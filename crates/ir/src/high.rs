//! ExprHigh: the named, graph-shaped circuit representation.
//!
//! ExprHigh is the higher-level language of Fig. 1 in the paper: a graph of
//! named component instances with point-to-point connections between ports,
//! plus dangling graph-level inputs and outputs. Rewrites are *matched* on
//! ExprHigh and *applied* on [ExprLow](crate::low), then lifted back.

use crate::component::CompKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A node (component instance) identifier.
pub type NodeId = String;

/// A list of directed wires as (from, to) endpoint pairs.
pub type EdgeList = Vec<(Endpoint, Endpoint)>;

/// One end of a connection: a node and one of its ports.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The node name.
    pub node: NodeId,
    /// The port name on that node's interface.
    pub port: String,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(node: impl Into<NodeId>, port: impl Into<String>) -> Self {
        Endpoint { node: node.into(), port: port.into() }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.port)
    }
}

/// Shorthand for [`Endpoint::new`].
pub fn ep(node: impl Into<NodeId>, port: impl Into<String>) -> Endpoint {
    Endpoint::new(node, port)
}

/// What drives an input port, or what consumes an output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attachment {
    /// An edge to/from another component port.
    Wire(Endpoint),
    /// A graph-level external port with the given name.
    External(String),
}

/// Errors raised by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node with this name already exists.
    DuplicateNode(NodeId),
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// The referenced port does not exist on the node's interface.
    UnknownPort(Endpoint),
    /// The input port is already driven.
    PortAlreadyDriven(Endpoint),
    /// The output port is already consumed.
    PortAlreadyConsumed(Endpoint),
    /// An external port with this name already exists.
    DuplicateExternal(String),
    /// A port is left unconnected.
    Unconnected(Endpoint),
    /// The two endpoints of a connection have incompatible types.
    TypeMismatch {
        /// Producer endpoint.
        from: Endpoint,
        /// Consumer endpoint.
        to: Endpoint,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            GraphError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            GraphError::UnknownPort(e) => write!(f, "unknown port `{e}`"),
            GraphError::PortAlreadyDriven(e) => write!(f, "input port `{e}` is already driven"),
            GraphError::PortAlreadyConsumed(e) => {
                write!(f, "output port `{e}` is already consumed")
            }
            GraphError::DuplicateExternal(n) => write!(f, "duplicate external port `{n}`"),
            GraphError::Unconnected(e) => write!(f, "port `{e}` is unconnected"),
            GraphError::TypeMismatch { from, to } => {
                write!(f, "type mismatch on connection `{from}` -> `{to}`")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A dataflow circuit as a graph of named components.
///
/// Invariants maintained by the mutation API:
/// * every edge connects an existing output port to an existing input port,
/// * each input port has at most one driver (edge or external input),
/// * each output port has at most one consumer (edge or external output).
///
/// A *complete* circuit (checked by [`ExprHigh::validate`]) additionally has
/// every port connected.
///
/// # Examples
///
/// ```
/// use graphiti_ir::{ep, CompKind, ExprHigh, Op};
/// let mut g = ExprHigh::new();
/// g.add_node("f", CompKind::Fork { ways: 2 })?;
/// g.add_node("m", CompKind::Operator { op: Op::Mod })?;
/// g.expose_input("x", ep("f", "in"))?;
/// g.connect(ep("f", "out0"), ep("m", "in0"))?;
/// g.connect(ep("f", "out1"), ep("m", "in1"))?;
/// g.expose_output("y", ep("m", "out"))?;
/// g.validate()?;
/// # Ok::<(), graphiti_ir::GraphError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExprHigh {
    nodes: BTreeMap<NodeId, CompKind>,
    /// Edges keyed by producer endpoint.
    edges: BTreeMap<Endpoint, Endpoint>,
    /// Reverse index keyed by consumer endpoint.
    redges: BTreeMap<Endpoint, Endpoint>,
    /// External inputs: name -> the input port they drive.
    inputs: BTreeMap<String, Endpoint>,
    /// External outputs: name -> the output port they consume.
    outputs: BTreeMap<String, Endpoint>,
}

impl ExprHigh {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of component instances.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over `(name, kind)` pairs in name order.
    pub fn nodes(&self) -> impl Iterator<Item = (&NodeId, &CompKind)> {
        self.nodes.iter()
    }

    /// The kind of a node, if present.
    pub fn kind(&self, node: &str) -> Option<&CompKind> {
        self.nodes.get(node)
    }

    /// Iterates over edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (&Endpoint, &Endpoint)> {
        self.edges.iter()
    }

    /// External inputs as `(name, driven input port)`.
    pub fn inputs(&self) -> impl Iterator<Item = (&String, &Endpoint)> {
        self.inputs.iter()
    }

    /// External outputs as `(name, consumed output port)`.
    pub fn outputs(&self) -> impl Iterator<Item = (&String, &Endpoint)> {
        self.outputs.iter()
    }

    /// Adds a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if the name is taken.
    pub fn add_node(&mut self, name: impl Into<NodeId>, kind: CompKind) -> Result<(), GraphError> {
        let name = name.into();
        if self.nodes.contains_key(&name) {
            return Err(GraphError::DuplicateNode(name));
        }
        self.nodes.insert(name, kind);
        Ok(())
    }

    /// Replaces the kind of an existing node in place. The new kind must
    /// expose the same port interface, so every attached edge stays valid
    /// (e.g. retuning a Buffer's capacity).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a missing node and
    /// [`GraphError::UnknownPort`] when the interfaces differ.
    pub fn set_kind(&mut self, name: &str, kind: CompKind) -> Result<(), GraphError> {
        let old = self.nodes.get(name).ok_or_else(|| GraphError::UnknownNode(name.to_string()))?;
        if old.interface() != kind.interface() {
            return Err(GraphError::UnknownPort(ep(name, "<interface mismatch>")));
        }
        self.nodes.insert(name.to_string(), kind);
        Ok(())
    }

    /// Returns a node name starting with `prefix` that is not yet used.
    pub fn fresh(&self, prefix: &str) -> NodeId {
        if !self.nodes.contains_key(prefix) {
            return prefix.to_string();
        }
        let mut i = 0usize;
        loop {
            let cand = format!("{prefix}_{i}");
            if !self.nodes.contains_key(&cand) {
                return cand;
            }
            i += 1;
        }
    }

    fn check_out_port(&self, e: &Endpoint) -> Result<(), GraphError> {
        let kind =
            self.nodes.get(&e.node).ok_or_else(|| GraphError::UnknownNode(e.node.clone()))?;
        let (_, outs) = kind.interface();
        if !outs.contains(&e.port) {
            return Err(GraphError::UnknownPort(e.clone()));
        }
        Ok(())
    }

    fn check_in_port(&self, e: &Endpoint) -> Result<(), GraphError> {
        let kind =
            self.nodes.get(&e.node).ok_or_else(|| GraphError::UnknownNode(e.node.clone()))?;
        let (ins, _) = kind.interface();
        if !ins.contains(&e.port) {
            return Err(GraphError::UnknownPort(e.clone()));
        }
        Ok(())
    }

    /// Connects an output port to an input port.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is invalid or already connected.
    pub fn connect(&mut self, from: Endpoint, to: Endpoint) -> Result<(), GraphError> {
        self.check_out_port(&from)?;
        self.check_in_port(&to)?;
        if self.consumer(&from).is_some() {
            return Err(GraphError::PortAlreadyConsumed(from));
        }
        if self.driver(&to).is_some() {
            return Err(GraphError::PortAlreadyDriven(to));
        }
        self.redges.insert(to.clone(), from.clone());
        self.edges.insert(from, to);
        Ok(())
    }

    /// Declares a graph-level input named `name` driving input port `to`.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint is invalid or already driven, or the name taken.
    pub fn expose_input(
        &mut self,
        name: impl Into<String>,
        to: Endpoint,
    ) -> Result<(), GraphError> {
        let name = name.into();
        self.check_in_port(&to)?;
        if self.inputs.contains_key(&name) {
            return Err(GraphError::DuplicateExternal(name));
        }
        if self.driver(&to).is_some() {
            return Err(GraphError::PortAlreadyDriven(to));
        }
        self.inputs.insert(name, to);
        Ok(())
    }

    /// Declares a graph-level output named `name` consuming output port
    /// `from`.
    ///
    /// # Errors
    ///
    /// Fails if the endpoint is invalid or already consumed, or the name
    /// taken.
    pub fn expose_output(
        &mut self,
        name: impl Into<String>,
        from: Endpoint,
    ) -> Result<(), GraphError> {
        let name = name.into();
        self.check_out_port(&from)?;
        if self.outputs.contains_key(&name) {
            return Err(GraphError::DuplicateExternal(name));
        }
        if self.consumer(&from).is_some() {
            return Err(GraphError::PortAlreadyConsumed(from));
        }
        self.outputs.insert(name, from);
        Ok(())
    }

    /// What drives input port `to`, if anything.
    pub fn driver(&self, to: &Endpoint) -> Option<Attachment> {
        if let Some(from) = self.redges.get(to) {
            return Some(Attachment::Wire(from.clone()));
        }
        self.inputs.iter().find(|(_, e)| *e == to).map(|(n, _)| Attachment::External(n.clone()))
    }

    /// What consumes output port `from`, if anything.
    pub fn consumer(&self, from: &Endpoint) -> Option<Attachment> {
        if let Some(to) = self.edges.get(from) {
            return Some(Attachment::Wire(to.clone()));
        }
        self.outputs.iter().find(|(_, e)| *e == from).map(|(n, _)| Attachment::External(n.clone()))
    }

    /// Removes the attachment of input port `to` (edge or external input),
    /// returning what drove it.
    pub fn detach_input(&mut self, to: &Endpoint) -> Option<Attachment> {
        if let Some(from) = self.redges.remove(to) {
            self.edges.remove(&from);
            return Some(Attachment::Wire(from));
        }
        let name = self.inputs.iter().find(|(_, e)| *e == to).map(|(n, _)| n.clone())?;
        self.inputs.remove(&name);
        Some(Attachment::External(name))
    }

    /// Removes the attachment of output port `from` (edge or external
    /// output), returning what consumed it.
    pub fn detach_output(&mut self, from: &Endpoint) -> Option<Attachment> {
        if let Some(to) = self.edges.remove(from) {
            self.redges.remove(&to);
            return Some(Attachment::Wire(to));
        }
        let name = self.outputs.iter().find(|(_, e)| *e == from).map(|(n, _)| n.clone())?;
        self.outputs.remove(&name);
        Some(Attachment::External(name))
    }

    /// Removes a node and detaches all its ports, returning its kind.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node does not exist.
    pub fn remove_node(&mut self, name: &str) -> Result<CompKind, GraphError> {
        let kind =
            self.nodes.remove(name).ok_or_else(|| GraphError::UnknownNode(name.to_string()))?;
        let (ins, outs) = kind.interface();
        for p in ins {
            self.detach_input(&Endpoint::new(name, p));
        }
        for p in outs {
            self.detach_output(&Endpoint::new(name, p));
        }
        Ok(kind)
    }

    /// Checks that the circuit is complete: every port of every node is
    /// connected (to an edge or an external port).
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError::Unconnected`] port found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (name, kind) in &self.nodes {
            let (ins, outs) = kind.interface();
            for p in ins {
                let e = Endpoint::new(name.clone(), p);
                if self.driver(&e).is_none() {
                    return Err(GraphError::Unconnected(e));
                }
            }
            for p in outs {
                let e = Endpoint::new(name.clone(), p);
                if self.consumer(&e).is_none() {
                    return Err(GraphError::Unconnected(e));
                }
            }
        }
        Ok(())
    }

    /// Checks edge-wise type compatibility using the components' declared
    /// port types ([`Ty::Any`](crate::Ty::Any) is a wildcard).
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError::TypeMismatch`] found.
    pub fn typecheck(&self) -> Result<(), GraphError> {
        for (from, to) in &self.edges {
            let fk = &self.nodes[&from.node];
            let tk = &self.nodes[&to.node];
            let (_, fouts) = fk.interface();
            let (tins, _) = tk.interface();
            let (_, ftys) = fk.port_types();
            let (ttys, _) = tk.port_types();
            let fi = fouts.iter().position(|p| *p == from.port).expect("validated port");
            let ti = tins.iter().position(|p| *p == to.port).expect("validated port");
            if !ftys[fi].compatible(&ttys[ti]) {
                return Err(GraphError::TypeMismatch { from: from.clone(), to: to.clone() });
            }
        }
        Ok(())
    }

    /// The set of node names.
    pub fn node_names(&self) -> BTreeSet<NodeId> {
        self.nodes.keys().cloned().collect()
    }

    /// Renames external input `old` to `new`.
    ///
    /// # Errors
    ///
    /// Fails if `old` is missing or `new` exists.
    pub fn rename_input(&mut self, old: &str, new: impl Into<String>) -> Result<(), GraphError> {
        let new = new.into();
        if self.inputs.contains_key(&new) {
            return Err(GraphError::DuplicateExternal(new));
        }
        let e = self.inputs.remove(old).ok_or_else(|| GraphError::UnknownNode(old.to_string()))?;
        self.inputs.insert(new, e);
        Ok(())
    }

    /// Renames external output `old` to `new`.
    ///
    /// # Errors
    ///
    /// Fails if `old` is missing or `new` exists.
    pub fn rename_output(&mut self, old: &str, new: impl Into<String>) -> Result<(), GraphError> {
        let new = new.into();
        if self.outputs.contains_key(&new) {
            return Err(GraphError::DuplicateExternal(new));
        }
        let e = self.outputs.remove(old).ok_or_else(|| GraphError::UnknownNode(old.to_string()))?;
        self.outputs.insert(new, e);
        Ok(())
    }

    /// A histogram of component type names, for reporting.
    ///
    /// ```
    /// use graphiti_ir::{CompKind, ExprHigh};
    /// let mut g = ExprHigh::new();
    /// g.add_node("a", CompKind::Sink)?;
    /// g.add_node("b", CompKind::Sink)?;
    /// g.add_node("m", CompKind::Merge)?;
    /// assert_eq!(g.kind_histogram()["sink"], 2);
    /// # Ok::<(), graphiti_ir::GraphError>(())
    /// ```
    pub fn kind_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for (_, k) in self.nodes() {
            *h.entry(k.type_name()).or_insert(0) += 1;
        }
        h
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges incident to the node set `nodes`, split into
    /// (internal, entering, leaving) where entering/leaving cross the
    /// boundary.
    pub fn boundary_edges(&self, nodes: &BTreeSet<NodeId>) -> (EdgeList, EdgeList, EdgeList) {
        let mut internal = Vec::new();
        let mut entering = Vec::new();
        let mut leaving = Vec::new();
        for (from, to) in &self.edges {
            match (nodes.contains(&from.node), nodes.contains(&to.node)) {
                (true, true) => internal.push((from.clone(), to.clone())),
                (false, true) => entering.push((from.clone(), to.clone())),
                (true, false) => leaving.push((from.clone(), to.clone())),
                (false, false) => {}
            }
        }
        (internal, entering, leaving)
    }
}

impl fmt::Display for ExprHigh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph {{")?;
        for (n, k) in &self.nodes {
            writeln!(f, "  {n}: {k}")?;
        }
        for (from, to) in &self.edges {
            writeln!(f, "  {from} -> {to}")?;
        }
        for (n, e) in &self.inputs {
            writeln!(f, "  in {n} -> {e}")?;
        }
        for (n, e) in &self.outputs {
            writeln!(f, "  out {e} -> {n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Op;

    fn fork_mod() -> ExprHigh {
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("m", CompKind::Operator { op: Op::Mod }).unwrap();
        g.expose_input("x", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("m", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("m", "in1")).unwrap();
        g.expose_output("y", ep("m", "out")).unwrap();
        g
    }

    #[test]
    fn build_and_validate() {
        let g = fork_mod();
        assert_eq!(g.node_count(), 2);
        g.validate().unwrap();
        g.typecheck().unwrap();
    }

    #[test]
    fn double_drive_rejected() {
        let mut g = fork_mod();
        assert_eq!(
            g.connect(ep("f", "out0"), ep("m", "in1")),
            Err(GraphError::PortAlreadyConsumed(ep("f", "out0")))
        );
        g.add_node("f2", CompKind::Fork { ways: 2 }).unwrap();
        assert_eq!(
            g.connect(ep("f2", "out0"), ep("m", "in0")),
            Err(GraphError::PortAlreadyDriven(ep("m", "in0")))
        );
    }

    #[test]
    fn unknown_ports_rejected() {
        let mut g = fork_mod();
        assert_eq!(
            g.connect(ep("f", "out7"), ep("m", "in0")),
            Err(GraphError::UnknownPort(ep("f", "out7")))
        );
        assert_eq!(
            g.connect(ep("zz", "out"), ep("m", "in0")),
            Err(GraphError::UnknownNode("zz".into()))
        );
    }

    #[test]
    fn incomplete_graph_fails_validation() {
        let mut g = ExprHigh::new();
        g.add_node("s", CompKind::Sink).unwrap();
        assert_eq!(g.validate(), Err(GraphError::Unconnected(ep("s", "in"))));
    }

    #[test]
    fn remove_node_detaches_edges() {
        let mut g = fork_mod();
        g.remove_node("m").unwrap();
        assert!(g.consumer(&ep("f", "out0")).is_none());
        assert!(g.outputs().next().is_none());
    }

    #[test]
    fn driver_and_consumer_lookups() {
        let g = fork_mod();
        assert_eq!(g.driver(&ep("f", "in")), Some(Attachment::External("x".into())));
        assert_eq!(g.driver(&ep("m", "in0")), Some(Attachment::Wire(ep("f", "out0"))));
        assert_eq!(g.consumer(&ep("m", "out")), Some(Attachment::External("y".into())));
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let g = fork_mod();
        assert_eq!(g.fresh("z"), "z");
        let n = g.fresh("f");
        assert_ne!(n, "f");
        assert!(!g.node_names().contains(&n));
    }

    #[test]
    fn boundary_edge_partition() {
        let g = fork_mod();
        let set: BTreeSet<NodeId> = ["m".to_string()].into_iter().collect();
        let (internal, entering, leaving) = g.boundary_edges(&set);
        assert!(internal.is_empty());
        assert_eq!(entering.len(), 2);
        assert!(leaving.is_empty());
    }

    #[test]
    fn type_mismatch_detected() {
        let mut g = ExprHigh::new();
        g.add_node("c", CompKind::Constant { value: Value::Bool(true) }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddI }).unwrap();
        g.connect(ep("c", "out"), ep("a", "in0")).unwrap();
        assert!(matches!(g.typecheck(), Err(GraphError::TypeMismatch { .. })));
    }

    use crate::value::Value;
}
