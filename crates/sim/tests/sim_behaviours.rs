//! Simulator behaviours beyond the unit tests: memory ordering across
//! multiple store ports, deep-pipeline fast-forwarding, tag exhaustion
//! under backpressure, and leftover-token accounting for primed loops.

use graphiti_ir::{ep, CompKind, ExprHigh, Op, Value};
use graphiti_sim::{place_buffers, simulate, Memory, SimConfig, Simulator};
use std::collections::BTreeMap;

fn feeds(pairs: &[(&str, Vec<Value>)]) -> BTreeMap<String, Vec<Value>> {
    pairs.iter().map(|(n, v)| (n.to_string(), v.clone())).collect()
}

#[test]
fn two_store_ports_commit_in_arrival_order() {
    // Two store units write the same cell; the second is delayed behind a
    // deep fdiv, so the first unit's write lands first and the second wins.
    let mut g = ExprHigh::new();
    g.add_node("fast", CompKind::Store { mem: "cell".into() }).unwrap();
    g.add_node("slow", CompKind::Store { mem: "cell".into() }).unwrap();
    g.add_node("div", CompKind::Operator { op: Op::DivF }).unwrap();
    g.add_node("itoa", CompKind::Operator { op: Op::Not }).unwrap(); // placeholder shaping
    g.add_node("kf", CompKind::Sink).unwrap();
    g.add_node("ks", CompKind::Sink).unwrap();
    g.add_node("kx", CompKind::Sink).unwrap();
    // fast path: addr + data fed directly.
    g.expose_input("fa", ep("fast", "addr")).unwrap();
    g.expose_input("fd", ep("fast", "data")).unwrap();
    g.connect(ep("fast", "done"), ep("kf", "in")).unwrap();
    // slow path: its data goes through a 20-cycle divider first.
    g.expose_input("sa", ep("slow", "addr")).unwrap();
    g.expose_input("d0", ep("div", "in0")).unwrap();
    g.expose_input("d1", ep("div", "in1")).unwrap();
    g.connect(ep("div", "out"), ep("slow", "data")).unwrap();
    g.connect(ep("slow", "done"), ep("ks", "in")).unwrap();
    // park the placeholder op.
    g.expose_input("nb", ep("itoa", "in0")).unwrap();
    g.connect(ep("itoa", "out"), ep("kx", "in")).unwrap();

    let mem: Memory = [("cell".to_string(), vec![Value::from_f64(0.0)])].into_iter().collect();
    let r = simulate(
        &g,
        &feeds(&[
            ("fa", vec![Value::Int(0)]),
            ("fd", vec![Value::from_f64(1.0)]),
            ("sa", vec![Value::Int(0)]),
            ("d0", vec![Value::from_f64(9.0)]),
            ("d1", vec![Value::from_f64(3.0)]),
            ("nb", vec![Value::Bool(true)]),
        ]),
        mem,
        SimConfig::default(),
    )
    .unwrap();
    // The divider's result (3.0) arrives ~20 cycles later and overwrites.
    assert_eq!(r.memory["cell"], vec![Value::from_f64(3.0)]);
    assert!(r.cycles >= 20, "cycles = {}", r.cycles);
}

#[test]
fn fast_forward_skips_idle_pipeline_cycles_correctly() {
    // A lone fdiv (latency 20): the simulator fast-forwards the idle wait
    // but the cycle count still reflects the full latency.
    let mut g = ExprHigh::new();
    g.add_node("d", CompKind::Operator { op: Op::DivF }).unwrap();
    g.expose_input("a", ep("d", "in0")).unwrap();
    g.expose_input("b", ep("d", "in1")).unwrap();
    g.expose_output("y", ep("d", "out")).unwrap();
    let r = simulate(
        &g,
        &feeds(&[("a", vec![Value::from_f64(10.0)]), ("b", vec![Value::from_f64(4.0)])]),
        Memory::new(),
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(r.outputs["y"], vec![Value::from_f64(2.5)]);
    assert_eq!(r.cycles, 21);
}

#[test]
fn tag_exhaustion_backpressures_but_recovers() {
    // Tagger with 1 tag feeding an identity region: three tokens must still
    // all pass, strictly serialized by tag reuse.
    let mut g = ExprHigh::new();
    g.add_node("t", CompKind::TaggerUntagger { tags: 1 }).unwrap();
    g.add_node("b", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
    g.expose_input("x", ep("t", "in")).unwrap();
    g.connect(ep("t", "tagged"), ep("b", "in")).unwrap();
    g.connect(ep("b", "out"), ep("t", "retag")).unwrap();
    g.expose_output("y", ep("t", "out")).unwrap();
    let vals: Vec<Value> = (0..3).map(Value::Int).collect();
    let r =
        simulate(&g, &feeds(&[("x", vals.clone())]), Memory::new(), SimConfig::default()).unwrap();
    assert_eq!(r.outputs["y"], vals);
    assert_eq!(r.leftover_tokens, 0);
}

#[test]
fn primed_loop_leftovers_are_reported_not_fatal() {
    // A sequential counting loop leaves its final `false` condition parked
    // at the Mux: the simulator quiesces and reports the leftover.
    let mut g = ExprHigh::new();
    g.add_node("mux", CompKind::Mux).unwrap();
    g.add_node("f", CompKind::Fork { ways: 3 }).unwrap();
    g.add_node("one", CompKind::Constant { value: Value::Int(1) }).unwrap();
    g.add_node("add", CompKind::Operator { op: Op::AddI }).unwrap();
    g.add_node("fup", CompKind::Fork { ways: 3 }).unwrap();
    g.add_node("lim", CompKind::Constant { value: Value::Int(3) }).unwrap();
    g.add_node("lt", CompKind::Operator { op: Op::LtI }).unwrap();
    g.add_node("cf", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("init", CompKind::Init { initial: false }).unwrap();
    g.add_node("br", CompKind::Branch).unwrap();
    g.add_node("ksink", CompKind::Sink).unwrap();
    g.expose_input("start", ep("mux", "f")).unwrap();
    g.connect(ep("init", "out"), ep("mux", "cond")).unwrap();
    g.connect(ep("mux", "out"), ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("add", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("one", "ctrl")).unwrap();
    g.connect(ep("f", "out2"), ep("ksink", "in")).unwrap();
    g.connect(ep("one", "out"), ep("add", "in1")).unwrap();
    g.connect(ep("add", "out"), ep("fup", "in")).unwrap();
    g.connect(ep("fup", "out0"), ep("br", "in")).unwrap();
    g.connect(ep("fup", "out1"), ep("lt", "in0")).unwrap();
    g.connect(ep("fup", "out2"), ep("lim", "ctrl")).unwrap();
    g.connect(ep("lim", "out"), ep("lt", "in1")).unwrap();
    g.connect(ep("lt", "out"), ep("cf", "in")).unwrap();
    g.connect(ep("cf", "out0"), ep("br", "cond")).unwrap();
    g.connect(ep("cf", "out1"), ep("init", "in")).unwrap();
    g.connect(ep("br", "t"), ep("mux", "t")).unwrap();
    g.expose_output("out", ep("br", "f")).unwrap();
    let (placed, _) = place_buffers(&g);
    let r = simulate(
        &placed,
        &feeds(&[("start", vec![Value::Int(0)])]),
        Memory::new(),
        SimConfig::default(),
    )
    .unwrap();
    assert_eq!(r.outputs["out"], vec![Value::Int(3)], "counts 0 -> 3");
    assert!(r.leftover_tokens >= 1, "the parked false condition is reported");
    assert!(r.leftover_tokens <= 2, "but nothing else leaks: {}", r.leftover_tokens);
}

#[test]
fn unknown_feed_port_is_an_error() {
    let mut g = ExprHigh::new();
    g.add_node("k", CompKind::Sink).unwrap();
    g.expose_input("x", ep("k", "in")).unwrap();
    let sim = Simulator::new(&g, Memory::new(), SimConfig::default()).unwrap();
    let err = sim.run(&feeds(&[("zz", vec![Value::Unit])])).unwrap_err();
    assert!(err.to_string().contains("no input named"), "{err}");
}

#[test]
fn incomplete_graph_is_rejected_up_front() {
    let mut g = ExprHigh::new();
    g.add_node("k", CompKind::Sink).unwrap();
    let err = Simulator::new(&g, Memory::new(), SimConfig::default()).err().unwrap();
    assert!(err.to_string().contains("not simulatable"), "{err}");
}
