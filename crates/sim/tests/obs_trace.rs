//! Golden test for the simulator's Chrome trace emission: a two-node
//! circuit (adder feeding a buffer) must produce exactly the expected
//! fire events on the simulated-time lanes, with matching registry
//! counters and a well-formed exported document.
//!
//! `graphiti-obs` state is process-global, so this lives in its own test
//! binary with a single `#[test]` — no other test races the registry.

use graphiti_ir::{ep, CompKind, ExprHigh, Op, Value};
use graphiti_sim::{simulate, Memory, SimConfig};
use std::collections::BTreeMap;

#[test]
fn two_node_circuit_emits_golden_trace() {
    graphiti_obs::reset();
    graphiti_obs::enable();

    // add → buf: two additions flow through a one-slot opaque buffer.
    let mut g = ExprHigh::new();
    g.add_node("add", CompKind::Operator { op: Op::AddI }).unwrap();
    g.add_node("buf", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
    g.expose_input("a", ep("add", "in0")).unwrap();
    g.expose_input("b", ep("add", "in1")).unwrap();
    g.connect(ep("add", "out"), ep("buf", "in")).unwrap();
    g.expose_output("y", ep("buf", "out")).unwrap();
    g.validate().unwrap();

    let feeds: BTreeMap<String, Vec<Value>> = [
        ("a".to_string(), vec![Value::Int(1), Value::Int(10)]),
        ("b".to_string(), vec![Value::Int(2), Value::Int(20)]),
    ]
    .into_iter()
    .collect();
    let r = simulate(&g, &feeds, Memory::new(), SimConfig::default()).unwrap();
    assert_eq!(r.outputs["y"], vec![Value::Int(3), Value::Int(30)]);

    // The golden trace: one complete event per node fire on the PID_SIM
    // process, timestamped with the cycle (1 cycle = 1 µs), one lane (tid)
    // per node in declaration order.
    let fires: Vec<(String, u32, u64)> = graphiti_obs::trace_events()
        .into_iter()
        .filter(|e| e.pid == graphiti_obs::PID_SIM)
        .map(|e| (e.name, e.tid, e.ts_us))
        .collect();
    let golden: Vec<(String, u32, u64)> = [
        ("add", 0, 0), // first addition the cycle both operands arrive
        ("buf", 1, 0), // buffer latches it the same cycle (elastic handoff)
        ("add", 0, 1), // second addition pipelines right behind
        ("buf", 1, 1), // first token out, second token in
        ("buf", 1, 2), // second token drains
    ]
    .into_iter()
    .map(|(n, tid, ts)| (n.to_string(), tid, ts))
    .collect();
    assert_eq!(fires, golden);

    // Counters must agree with both the trace and the simulator's result.
    assert_eq!(graphiti_obs::counter("sim.fire.add").get(), 2);
    assert_eq!(graphiti_obs::counter("sim.fire.buf").get(), 3);
    assert_eq!(graphiti_obs::counter("sim.firings").get(), r.firings);
    assert_eq!(graphiti_obs::counter("sim.cycles").get(), r.cycles);

    // And the exporter renders it as a loadable Chrome trace document.
    let doc = graphiti_obs::chrome_trace_json();
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"ph\":\"X\""));
    assert!(doc.contains("\"add\""));

    graphiti_obs::disable();
    graphiti_obs::reset();
}
