//! Resilience-facing integration tests for the simulator: the deadlock
//! detector (identical across all three schedulers), cooperative
//! cancellation, deterministic fault injection into the fire paths and the
//! artifact cache, and the compiled-artifact cache's LRU bound.
//!
//! Failpoint configuration is process-global, so the tests that arm it
//! serialize on a local mutex and always clear the schedule on exit (the
//! guard pattern survives assertion panics).

use graphiti_ir::{ep, CompKind, ExprHigh, Value};
use graphiti_sim::{simulate, Memory, Scheduler, SimConfig, SimError};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes the failpoint-arming tests in this binary.
fn fp_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Clears the failpoint schedule when dropped, even on panic.
struct FpGuard;
impl Drop for FpGuard {
    fn drop(&mut self) {
        graphiti_obs::failpoint::clear();
    }
}

fn feeds(name: &str, vals: Vec<Value>) -> BTreeMap<String, Vec<Value>> {
    [(name.to_string(), vals)].into_iter().collect()
}

/// A circuit that wedges permanently: the fork cannot fire because its
/// `out1` consumer is a join starved of its never-fed second operand, so
/// the loop through the buffer fills up and every token freezes in place.
fn deadlock_kernel() -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("m", CompKind::Merge).unwrap();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("b", CompKind::Buffer { slots: 2, transparent: false }).unwrap();
    g.add_node("j", CompKind::Join).unwrap();
    g.add_node("k", CompKind::Sink).unwrap();
    g.expose_input("x", ep("m", "in0")).unwrap();
    g.connect(ep("m", "out"), ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("b", "in")).unwrap();
    g.connect(ep("b", "out"), ep("m", "in1")).unwrap();
    g.connect(ep("f", "out1"), ep("j", "in0")).unwrap();
    g.expose_input("never", ep("j", "in1")).unwrap();
    g.connect(ep("j", "out"), ep("k", "in")).unwrap();
    g
}

#[test]
fn deadlock_is_reported_identically_on_all_three_schedulers() {
    let g = deadlock_kernel();
    let mut reports = Vec::new();
    for sched in [Scheduler::EventDriven, Scheduler::ReferenceSweep, Scheduler::Compiled] {
        let cfg = SimConfig {
            max_cycles: 10_000,
            deadlock_window: 64,
            scheduler: sched,
            ..Default::default()
        };
        let err = simulate(&g, &feeds("x", vec![Value::Int(1), Value::Int(2)]), Memory::new(), cfg)
            .expect_err("the kernel must deadlock");
        match err {
            SimError::Deadlock(report) => {
                assert!(
                    !report.wavefront.is_empty(),
                    "{sched:?}: deadlock report must carry a stuck wavefront"
                );
                assert!(report.tokens_in_flight > 0, "{sched:?}: tokens must be frozen in flight");
                // At least one node is *stalled* (operands present, cannot
                // fire) — the signature that distinguishes a deadlock from
                // benign loop-priming leftovers.
                assert!(
                    report.wavefront.iter().any(|n| n.stalled),
                    "{sched:?}: wavefront must contain a stalled node: {}",
                    report.render()
                );
                reports.push((sched, *report));
            }
            other => panic!("{sched:?}: expected Deadlock, got {other:?}"),
        }
    }
    // The wavefront — nodes, stalled/starved split, causes, blame paths —
    // and the frozen token count are identical across schedulers. (The
    // wavefront is sorted by node index, which coincides across cores.)
    let (_, first) = &reports[0];
    for (sched, report) in &reports[1..] {
        assert_eq!(report, first, "{sched:?} deadlock report diverges from {:?}", reports[0].0);
    }
}

#[test]
fn without_the_window_the_deadlock_kernel_just_finishes_short() {
    // Detection off (the default): quiescence with frozen tokens is an
    // ordinary finish with leftovers, preserving pre-existing behavior.
    let g = deadlock_kernel();
    let r = simulate(
        &g,
        &feeds("x", vec![Value::Int(1), Value::Int(2)]),
        Memory::new(),
        SimConfig { max_cycles: 10_000, ..Default::default() },
    )
    .expect("detection off: the wedge quiesces as a normal finish");
    assert!(r.leftover_tokens > 0);
    assert!(r.outputs.values().all(|v| v.is_empty()));
}

/// A healthy little pipeline used by the cancellation and injection tests.
fn healthy_kernel() -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("a", CompKind::Operator { op: graphiti_ir::Op::AddI }).unwrap();
    g.expose_input("x", ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
    g.expose_output("y", ep("a", "out")).unwrap();
    g
}

#[test]
fn pre_tripped_token_cancels_every_scheduler() {
    let g = healthy_kernel();
    for sched in [Scheduler::EventDriven, Scheduler::ReferenceSweep, Scheduler::Compiled] {
        let token = graphiti_obs::CancelToken::new();
        token.cancel();
        let cfg = SimConfig { scheduler: sched, cancel: Some(token), ..Default::default() };
        let err = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg)
            .expect_err("tripped token must cancel the run");
        assert_eq!(err, SimError::Cancelled, "{sched:?}");
    }
}

#[test]
fn injected_fire_faults_surface_as_errors_not_panics() {
    let _serial = fp_lock();
    let _guard = FpGuard;
    let g = healthy_kernel();
    // Interpreted fire path.
    graphiti_obs::failpoint::configure("seed=11;sim.fire=1/1").unwrap();
    for sched in [Scheduler::EventDriven, Scheduler::ReferenceSweep] {
        let cfg = SimConfig { scheduler: sched, ..Default::default() };
        let err = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg).unwrap_err();
        assert_eq!(err, SimError::Injected("sim.fire".into()), "{sched:?}");
    }
    // Compiled drive loop.
    graphiti_obs::failpoint::configure("seed=11;sim.fire.compiled=1/1").unwrap();
    let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
    let err = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg).unwrap_err();
    assert_eq!(err, SimError::Injected("sim.fire.compiled".into()));
}

#[test]
fn injected_lowering_fault_fails_the_compile_not_the_process() {
    let _serial = fp_lock();
    let _guard = FpGuard;
    graphiti_obs::failpoint::configure("seed=3;compile.lower=1/1").unwrap();
    // A circuit no other test compiles, so the lookup misses and the
    // injected fault hits the lowering path rather than a cache hit.
    let mut g = ExprHigh::new();
    g.add_node("b", CompKind::Buffer { slots: 9999, transparent: false }).unwrap();
    g.expose_input("x", ep("b", "in")).unwrap();
    g.expose_output("y", ep("b", "out")).unwrap();
    let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
    let err = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg).unwrap_err();
    assert_eq!(err, SimError::Injected("compile.lower".into()));
}

#[test]
fn corrupted_cache_reads_are_quarantined_and_recompiled() {
    let _serial = fp_lock();
    let _guard = FpGuard;
    let g = healthy_kernel();
    let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
    // Prime the cache cleanly, then poison every read: the re-hash check
    // plus the `cache.read` failpoint treat the entry as corrupted, so it
    // is quarantined (with a stat) and transparently recompiled — the
    // caller still gets the right answer.
    let r0 = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg.clone()).unwrap();
    let (_, q0, _, _) = graphiti_sim::compile_cache_detail();
    graphiti_obs::failpoint::configure("seed=5;cache.read=1/1").unwrap();
    let r1 = simulate(&g, &feeds("x", vec![Value::Int(3)]), Memory::new(), cfg).unwrap();
    let (_, q1, _, _) = graphiti_sim::compile_cache_detail();
    assert!(q1 > q0, "the poisoned read must be quarantined ({q0} -> {q1})");
    assert_eq!(r0.outputs, r1.outputs, "quarantine must not change the answer");
}

#[test]
fn artifact_cache_is_bounded_by_lru_eviction() {
    // 300 distinct circuits (disambiguated by buffer depth) overflow the
    // 256-entry cap no matter what other tests have inserted; the cache
    // must evict rather than grow without bound.
    let (ev0, _, _, _) = graphiti_sim::compile_cache_detail();
    let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
    for slots in 0..300usize {
        let mut g = ExprHigh::new();
        g.add_node("b", CompKind::Buffer { slots: 2 + slots, transparent: false }).unwrap();
        g.expose_input("x", ep("b", "in")).unwrap();
        g.expose_output("y", ep("b", "out")).unwrap();
        graphiti_sim::precompile(&g, &cfg).unwrap();
    }
    let (ev1, _, entries, bytes) = graphiti_sim::compile_cache_detail();
    assert!(ev1 - ev0 >= 44, "300 inserts over a 256-entry cap must evict (got {})", ev1 - ev0);
    assert!(entries <= 256, "entry cap violated: {entries}");
    assert!(bytes <= 64 << 20, "byte cap violated: {bytes}");
}
