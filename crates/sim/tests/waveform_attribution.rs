//! Waveform capture and stall attribution, exercised without the
//! process-global `graphiti-obs` registry (obs stays disabled here; the
//! counter-equality contract lives in its own test binary).

use graphiti_ir::{ep, CompKind, ExprHigh, Op, Value};
use graphiti_obs::vcd::{self, VcdValue};
use graphiti_sim::{simulate, Memory, Scheduler, SimConfig, SimResult, StallCause};
use std::collections::BTreeMap;

/// Tagger + pipelined FU + buffer: exercises channel pushes/pops,
/// per-cycle cap resets, pipeline maturities, and idle fast-forward.
fn tagged_pipeline() -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("t", CompKind::TaggerUntagger { tags: 2 }).unwrap();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("a", CompKind::Operator { op: Op::AddF }).unwrap();
    g.add_node("b", CompKind::Buffer { slots: 4, transparent: false }).unwrap();
    g.expose_input("x", ep("t", "in")).unwrap();
    g.connect(ep("t", "tagged"), ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
    g.connect(ep("a", "out"), ep("b", "in")).unwrap();
    g.connect(ep("b", "out"), ep("t", "retag")).unwrap();
    g.expose_output("y", ep("t", "out")).unwrap();
    g
}

/// An unbalanced join fed by a long-latency side pipeline: `j` first
/// starves on the drained `b` feed while the `m` pipeline keeps cycles
/// active, so starvation is attributed over many observed cycles.
fn starving_join() -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("j", CompKind::Join).unwrap();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("m", CompKind::Operator { op: Op::MulF }).unwrap();
    g.expose_input("a", ep("j", "in0")).unwrap();
    g.expose_input("b", ep("j", "in1")).unwrap();
    g.expose_output("y", ep("j", "out")).unwrap();
    g.expose_input("x", ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("m", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("m", "in1")).unwrap();
    g.expose_output("z", ep("m", "out")).unwrap();
    g
}

fn run(g: &ExprHigh, feeds: &BTreeMap<String, Vec<Value>>, cfg: SimConfig) -> SimResult {
    simulate(g, feeds, Memory::new(), cfg).unwrap()
}

fn floats(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::from_f64(i as f64)).collect()
}

#[test]
fn vcd_dumps_are_byte_identical_across_schedulers() {
    let g = tagged_pipeline();
    let feeds: BTreeMap<String, Vec<Value>> = [("x".to_string(), floats(6))].into_iter().collect();
    let cfg = |scheduler| SimConfig { waveform: true, scheduler, ..Default::default() };
    let ev = run(&g, &feeds, cfg(Scheduler::EventDriven));
    let sw = run(&g, &feeds, cfg(Scheduler::ReferenceSweep));
    let (ev_vcd, sw_vcd) = (ev.waveform.unwrap(), sw.waveform.unwrap());
    assert!(!ev_vcd.is_empty());
    assert_eq!(ev_vcd, sw_vcd, "waveforms must not depend on the scheduling core");

    let dump = vcd::parse(&ev_vcd).expect("writer output parses");
    // Three wires (valid/ready/tag) per channel: 5 edges + 1 input + 1 output.
    assert_eq!(dump.signals.len(), 3 * 7);
    assert!(dump.end_time() < ev.cycles, "samples are taken at pre-advance cycle numbers");
}

#[test]
fn vcd_replay_matches_final_channel_states() {
    // An unbalanced tagged diamond: f.out0's token rests in its channel
    // for a cycle while the opaque buffer on the other arm latches, so a
    // defined tag is observable at a cycle boundary.
    let mut g = ExprHigh::new();
    g.add_node("t", CompKind::TaggerUntagger { tags: 2 }).unwrap();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("b", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
    g.add_node("j", CompKind::Join).unwrap();
    g.expose_input("x", ep("t", "in")).unwrap();
    g.connect(ep("t", "tagged"), ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("j", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("b", "in")).unwrap();
    g.connect(ep("b", "out"), ep("j", "in1")).unwrap();
    g.connect(ep("j", "out"), ep("t", "retag")).unwrap();
    g.expose_output("y", ep("t", "out")).unwrap();
    let feeds: BTreeMap<String, Vec<Value>> =
        [("x".to_string(), vec![Value::Int(7), Value::Int(8)])].into_iter().collect();
    let r = run(&g, &feeds, SimConfig { waveform: true, ..Default::default() });
    assert_eq!(r.leftover_tokens, 0);
    let dump = vcd::parse(r.waveform.as_ref().unwrap()).unwrap();
    let end = dump.end_time();
    for sig in &dump.signals {
        let Some(chan) = sig.name.strip_suffix(".valid") else { continue };
        let v = dump.value_at(&sig.name, end).expect("valid sampled every active cycle");
        if chan.starts_with("out.") {
            // Output channels hold the collected tokens at quiescence.
            assert_eq!(v, VcdValue::Bits(1), "{chan} should end full");
        } else {
            // With zero leftover tokens every other channel drained.
            assert_eq!(v, VcdValue::Bits(0), "{chan} should end empty");
        }
    }
    // The direct arm held its tagged token at the end of cycle 0 while
    // the buffer arm latched: tag 0 is visible on the channel.
    assert_eq!(dump.value_at("f.out0_j.in0.valid", 0), Some(VcdValue::Bits(1)));
    assert_eq!(dump.value_at("f.out0_j.in0.tag", 0), Some(VcdValue::Bits(0)));
}

#[test]
fn trace_nodes_filters_waveform_signals() {
    let g = tagged_pipeline();
    let feeds: BTreeMap<String, Vec<Value>> = [("x".to_string(), floats(2))].into_iter().collect();
    let r = run(
        &g,
        &feeds,
        SimConfig { waveform: true, trace_nodes: vec!["a".to_string()], ..Default::default() },
    );
    let dump = vcd::parse(r.waveform.as_ref().unwrap()).unwrap();
    // Only channels touching node `a`: f.out0-a.in0, f.out1-a.in1, a.out-b.in.
    assert_eq!(dump.signals.len(), 3 * 3);
    for sig in &dump.signals {
        assert!(sig.name.contains("a."), "unexpected signal {}", sig.name);
    }
}

#[test]
fn attribution_sums_match_waiting_totals_per_node() {
    let g = starving_join();
    let mut feeds: BTreeMap<String, Vec<Value>> =
        [("x".to_string(), floats(5))].into_iter().collect();
    feeds.insert("a".to_string(), floats(3));
    feeds.insert("b".to_string(), floats(1));
    let cfg = |scheduler| SimConfig { attribute_stalls: true, scheduler, ..Default::default() };
    let ev = run(&g, &feeds, cfg(Scheduler::EventDriven));
    let sw = run(&g, &feeds, cfg(Scheduler::ReferenceSweep));
    let report = ev.stalls.unwrap();
    assert_eq!(report, sw.stalls.unwrap(), "attribution must not depend on the scheduler");

    // Per node, the cause counters partition the waiting cycles.
    let (mut stalled, mut starved) = (0, 0);
    for (node, stats) in &report.by_node {
        let cause_sum: u64 = stats.causes.values().sum();
        assert_eq!(cause_sum, stats.stalled + stats.starved, "partition broken for {node}");
        stalled += stats.stalled;
        starved += stats.starved;
    }
    assert_eq!(report.stall_cycles, stalled);
    assert_eq!(report.starved_cycles, starved);

    // The join starves on the drained `b` feed while `m`'s pipeline keeps
    // cycles active; the root cause is the exhausted external input.
    let j = &report.by_node["j"];
    assert!(j.starved > 0, "join must starve: {report:?}");
    assert!(j.causes.contains_key(&StallCause::StarvedBySource), "causes: {:?}", j.causes);
    // And the critical-chain ranking points at the starving feed channel.
    assert!(
        report.chains.iter().any(|c| c.path.iter().any(|p| p == "in.b")),
        "chains: {:?}",
        report.chains
    );
    assert!(report.channels.iter().any(|(name, _)| name == "in.b"));
}

#[test]
fn attribution_classifies_pipeline_latency() {
    // add(lat 10) -> j.in0 with a plentiful direct feed on j.in1: the
    // join starves on the FP pipeline for ~10 cycles per token.
    let mut g = ExprHigh::new();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("add", CompKind::Operator { op: Op::AddF }).unwrap();
    g.add_node("j", CompKind::Join).unwrap();
    g.expose_input("x", ep("f", "in")).unwrap();
    g.expose_input("c", ep("j", "in1")).unwrap();
    g.connect(ep("f", "out0"), ep("add", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("add", "in1")).unwrap();
    g.connect(ep("add", "out"), ep("j", "in0")).unwrap();
    g.expose_output("y", ep("j", "out")).unwrap();
    let mut feeds: BTreeMap<String, Vec<Value>> =
        [("x".to_string(), floats(4))].into_iter().collect();
    feeds.insert("c".to_string(), floats(4));
    let r = run(&g, &feeds, SimConfig { attribute_stalls: true, ..Default::default() });
    let report = r.stalls.unwrap();
    let j = &report.by_node["j"];
    assert!(j.starved > 0);
    assert_eq!(
        j.causes.get(&StallCause::PipelineLatency).copied().unwrap_or(0),
        j.starved,
        "the join behind the FP adder waits only on its pipeline: {report:?}"
    );
}

#[test]
fn report_renders_human_readable_summary() {
    let g = starving_join();
    let mut feeds: BTreeMap<String, Vec<Value>> =
        [("x".to_string(), floats(5))].into_iter().collect();
    feeds.insert("a".to_string(), floats(3));
    feeds.insert("b".to_string(), floats(1));
    let r = run(&g, &feeds, SimConfig { attribute_stalls: true, ..Default::default() });
    let text = r.stalls.unwrap().render(5);
    assert!(text.contains("lost node-cycles:"), "{text}");
    assert!(text.contains("starved-by-source"), "{text}");
    assert!(text.contains("critical channels:"), "{text}");
}

#[test]
fn disabled_run_carries_no_waveform_or_report() {
    let g = tagged_pipeline();
    let feeds: BTreeMap<String, Vec<Value>> = [("x".to_string(), floats(2))].into_iter().collect();
    let r = run(&g, &feeds, SimConfig::default());
    assert!(r.waveform.is_none());
    assert!(r.stalls.is_none());
}
