//! Contract between the attribution engine and the metrics layer: the
//! per-cause counters must sum exactly to the `sim.stall_cycles` /
//! `sim.starved_cycles` totals, because both are driven by the same
//! waiting-state predicate.
//!
//! `graphiti-obs` state is process-global, so this lives in its own test
//! binary with a single `#[test]` — no other test races the registry.

use graphiti_ir::{ep, CompKind, ExprHigh, Op, Value};
use graphiti_sim::{simulate, Memory, SimConfig, STALL_CAUSES};
use std::collections::BTreeMap;

#[test]
fn stall_cause_counters_sum_to_obs_totals() {
    graphiti_obs::reset();
    graphiti_obs::enable();

    // Unbalanced join (starves on the short `b` feed) plus an FP pipe
    // keeping cycles active — both stall and starve counters move.
    let mut g = ExprHigh::new();
    g.add_node("j", CompKind::Join).unwrap();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("m", CompKind::Operator { op: Op::MulF }).unwrap();
    g.expose_input("a", ep("j", "in0")).unwrap();
    g.expose_input("b", ep("j", "in1")).unwrap();
    g.expose_output("y", ep("j", "out")).unwrap();
    g.expose_input("x", ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("m", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("m", "in1")).unwrap();
    g.expose_output("z", ep("m", "out")).unwrap();

    let floats = |n: usize| (0..n).map(|i| Value::from_f64(i as f64)).collect::<Vec<_>>();
    let feeds: BTreeMap<String, Vec<Value>> =
        [("a".to_string(), floats(3)), ("b".to_string(), floats(1)), ("x".to_string(), floats(5))]
            .into_iter()
            .collect();
    let r = simulate(
        &g,
        &feeds,
        Memory::new(),
        SimConfig { attribute_stalls: true, ..Default::default() },
    )
    .unwrap();
    let report = r.stalls.expect("attribution requested");

    // The report totals equal the registry totals...
    let stall_total = graphiti_obs::counter("sim.stall_cycles").get();
    let starved_total = graphiti_obs::counter("sim.starved_cycles").get();
    assert_eq!(report.stall_cycles, stall_total);
    assert_eq!(report.starved_cycles, starved_total);
    assert!(starved_total > 0, "the unbalanced join must starve");

    // ...the exported per-cause counters partition them...
    let mut stall_causes = 0;
    let mut starve_causes = 0;
    for cause in STALL_CAUSES {
        let n = graphiti_obs::counter(&format!("sim.stall_cause.{cause}")).get();
        if cause.is_stall() {
            stall_causes += n;
        } else {
            starve_causes += n;
        }
    }
    assert_eq!(stall_causes, stall_total);
    assert_eq!(starve_causes, starved_total);

    // ...and per node the causes sum to that node's waiting cycles, with
    // the per-node stall counters agreeing with the registry.
    for (node, stats) in &report.by_node {
        assert_eq!(stats.causes.values().sum::<u64>(), stats.stalled + stats.starved);
        assert_eq!(
            graphiti_obs::counter(&format!("sim.stall_cycles.{node}")).get(),
            stats.stalled,
            "per-node stall counter diverged for {node}"
        );
    }

    graphiti_obs::disable();
    graphiti_obs::reset();
}
