//! Buffer placement (the substitute for Dynamatic's MILP-based placement
//! [40], in the deadlock-avoiding variant the paper uses).
//!
//! Every cycle in the circuit graph must contain a sequential element, both
//! for simulation throughput and so the timing model sees no combinational
//! loops. The heuristic inserts an opaque Buffer on every DFS back-edge.
//! Circuits containing a Tagger/Untagger get deeper buffers (capacity
//! `tags + 2`) so the out-of-order region can actually hold its in-flight
//! iterations — the paper likewise sizes buffers to the tag count.

use graphiti_ir::{Attachment, CompKind, EdgeList, Endpoint, ExprHigh, NodeId};
use std::collections::BTreeMap;

/// Statistics of a placement run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Buffers inserted on back-edges.
    pub inserted: usize,
    /// Capacity used for the inserted buffers.
    pub slots: usize,
}

/// The tag budget of the circuit, if any tagger is present.
fn tag_budget(g: &ExprHigh) -> Option<u32> {
    g.nodes()
        .filter_map(|(_, k)| match k {
            CompKind::TaggerUntagger { tags } => Some(*tags),
            _ => None,
        })
        .max()
}

/// Finds DFS back-edges over the component graph.
fn back_edges(g: &ExprHigh) -> Vec<(Endpoint, Endpoint)> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<NodeId, Color> =
        g.nodes().map(|(n, _)| (n.clone(), Color::White)).collect();
    // Successor endpoints per node, in deterministic order.
    let succs = |n: &NodeId| -> Vec<(Endpoint, Endpoint)> {
        let kind = g.kind(n).expect("node exists");
        let (_, outs) = kind.interface();
        outs.iter()
            .filter_map(|p| {
                let from = Endpoint::new(n.clone(), p.clone());
                match g.consumer(&from) {
                    Some(Attachment::Wire(to)) => Some((from, to)),
                    _ => None,
                }
            })
            .collect()
    };
    let mut back = Vec::new();
    let names: Vec<NodeId> = g.nodes().map(|(n, _)| n.clone()).collect();
    for root in &names {
        if color[root] != Color::White {
            continue;
        }
        // Iterative DFS with an explicit edge stack.
        let mut stack: Vec<(NodeId, EdgeList, usize)> = vec![(root.clone(), succs(root), 0)];
        color.insert(root.clone(), Color::Gray);
        while let Some((node, edges, idx)) = stack.last_mut() {
            if *idx >= edges.len() {
                color.insert(node.clone(), Color::Black);
                stack.pop();
                continue;
            }
            let (from, to) = edges[*idx].clone();
            *idx += 1;
            match color[&to.node] {
                Color::White => {
                    color.insert(to.node.clone(), Color::Gray);
                    let s = succs(&to.node);
                    stack.push((to.node.clone(), s, 0));
                }
                Color::Gray => back.push((from, to)),
                Color::Black => {}
            }
        }
    }
    back
}

/// Inserts opaque buffers on every back-edge and transparent *slack* FIFOs
/// on the inputs of synchronizing components (Joins, multi-operand
/// operators, Branches, Stores), sized to the tag budget.
///
/// The slack is what lets an out-of-order region actually overlap
/// iterations: without it, a 1-slot channel at a Join input back-pressures
/// the whole region while its sibling operand sits in a deep floating-point
/// pipeline. This mirrors the modified buffer-placement strategy the paper
/// uses to avoid deadlocks and sustain throughput in tagged circuits
/// (§6.1), and is applied identically to every flow for comparability.
pub fn place_buffers(g: &ExprHigh) -> (ExprHigh, PlacementStats) {
    let slots = tag_budget(g).map(|t| t as usize + 2).unwrap_or(2);
    let mut out = g.clone();
    let mut stats = PlacementStats { inserted: 0, slots };
    for (from, to) in back_edges(g) {
        // Skip if the edge already ends or starts at a sequential buffer.
        let from_buf =
            matches!(out.kind(&from.node), Some(CompKind::Buffer { transparent: false, .. }));
        let to_buf =
            matches!(out.kind(&to.node), Some(CompKind::Buffer { transparent: false, .. }));
        if from_buf || to_buf {
            continue;
        }
        let name = out.fresh(&format!("bbuf_{}", stats.inserted));
        out.add_node(name.clone(), CompKind::Buffer { slots, transparent: false })
            .expect("fresh name");
        out.detach_output(&from);
        out.detach_input(&to);
        out.connect(from, Endpoint::new(name.clone(), "in")).expect("rewire");
        out.connect(Endpoint::new(name, "out"), to).expect("rewire");
        stats.inserted += 1;
    }

    // Throughput slack on synchronizing inputs.
    let sync_edges: Vec<(Endpoint, Endpoint)> = out
        .nodes()
        .filter(|(_, k)| {
            let (ins, _) = k.interface();
            ins.len() >= 2 && !matches!(k, CompKind::Merge | CompKind::Mux)
        })
        .flat_map(|(n, k)| {
            let (ins, _) = k.interface();
            ins.into_iter().map(|p| Endpoint::new(n.clone(), p)).collect::<Vec<_>>()
        })
        .filter_map(|to| match out.driver(&to) {
            Some(Attachment::Wire(from))
                if !matches!(out.kind(&from.node), Some(CompKind::Buffer { .. })) =>
            {
                Some((from, to))
            }
            _ => None,
        })
        .collect();
    for (k, (from, to)) in sync_edges.into_iter().enumerate() {
        let name = out.fresh(&format!("slack_{k}"));
        out.add_node(name.clone(), CompKind::Buffer { slots, transparent: true })
            .expect("fresh name");
        out.detach_output(&from);
        out.detach_input(&to);
        out.connect(from, Endpoint::new(name.clone(), "in")).expect("rewire");
        out.connect(Endpoint::new(name, "out"), to).expect("rewire");
        stats.inserted += 1;
    }
    (out, stats)
}

/// Timing-driven placement: runs [`place_buffers`] and then iteratively
/// registers the midpoint of the critical combinational path until the
/// clock period meets `target_ns` (or no further cut helps). This mirrors
/// the clock-period constraint the paper gives Vivado (4 ns there; the
/// elastic component delays here are coarser, so the default target is
/// higher).
pub fn place_buffers_targeted(g: &ExprHigh, target_ns: f64) -> (ExprHigh, PlacementStats) {
    use crate::timing::{arrival_times, elastic_timing, NodeTiming};
    let (mut out, mut stats) = place_buffers(g);
    for _ in 0..200 {
        let arrival = match arrival_times(&out, &elastic_timing) {
            Ok(a) => a,
            Err(_) => break,
        };
        // Worst path endpoint.
        let mut worst: Option<(f64, NodeId)> = None;
        for (n, k) in out.nodes() {
            let end = match elastic_timing(k) {
                NodeTiming::Seq(i, _) => arrival[n] + i,
                NodeTiming::Comb(d) => arrival[n] + d,
            };
            if worst.as_ref().map(|(w, _)| end > *w).unwrap_or(true) {
                worst = Some((end, n.clone()));
            }
        }
        let (cp, endpoint) = match worst {
            Some(w) => w,
            None => break,
        };
        if cp <= target_ns {
            break;
        }
        // Walk the critical path backwards to the edge where the arrival
        // crosses the midpoint, and register it there.
        let contrib = |node: &NodeId| -> f64 {
            match elastic_timing(out.kind(node).expect("node")) {
                NodeTiming::Seq(_, o) => o,
                NodeTiming::Comb(d) => arrival[node] + d,
            }
        };
        let critical_pred = |node: &NodeId| -> Option<Endpoint> {
            let (ins, _) = out.kind(node).expect("node").interface();
            let mut best: Option<(f64, Endpoint)> = None;
            for p in ins {
                if let Some(Attachment::Wire(src)) = out.driver(&Endpoint::new(node.clone(), p)) {
                    let c = contrib(&src.node);
                    if best.as_ref().map(|(b, _)| c > *b).unwrap_or(true) {
                        best = Some((c, src));
                    }
                }
            }
            best.map(|(_, e)| e)
        };
        let mut cur = endpoint.clone();
        let mut cut_edge: Option<(Endpoint, Endpoint)> = None;
        while let Some(pred) = critical_pred(&cur) {
            // The edge pred -> cur; its running length at cur's input is
            // contrib(pred).
            if contrib(&pred.node) <= cp / 2.0 {
                // Find the exact in-port this edge feeds.
                let (ins, _) = out.kind(&cur).expect("node").interface();
                let to = ins
                    .into_iter()
                    .map(|p| Endpoint::new(cur.clone(), p))
                    .find(|e| matches!(out.driver(e), Some(Attachment::Wire(s)) if s == pred));
                if let Some(to) = to {
                    cut_edge = Some((pred, to));
                }
                break;
            }
            let is_seq = matches!(
                elastic_timing(out.kind(&pred.node).expect("node")),
                NodeTiming::Seq(_, _)
            );
            if is_seq {
                // Entire path is one hop from a slow sequential output:
                // nothing to cut.
                break;
            }
            cur = pred.node;
        }
        let (from, to) = match cut_edge {
            Some(e) => e,
            None => break,
        };
        if matches!(out.kind(&from.node), Some(CompKind::Buffer { transparent: false, .. })) {
            break; // cutting right after a register gains nothing
        }
        let name = out.fresh(&format!("tbuf_{}", stats.inserted));
        out.add_node(name.clone(), CompKind::Buffer { slots: 1, transparent: false })
            .expect("fresh name");
        out.detach_output(&from);
        out.detach_input(&to);
        out.connect(from, Endpoint::new(name.clone(), "in")).expect("rewire");
        out.connect(Endpoint::new(name, "out"), to).expect("rewire");
        stats.inserted += 1;
    }
    (out, stats)
}

/// Whether the graph still has a combinational cycle (a cycle with no
/// sequential element); used by the timing model's precondition check.
pub fn has_combinational_cycle(g: &ExprHigh, is_sequential: &dyn Fn(&CompKind) -> bool) -> bool {
    // DFS over combinational nodes only.
    let comb: Vec<NodeId> =
        g.nodes().filter(|(_, k)| !is_sequential(k)).map(|(n, _)| n.clone()).collect();
    let comb_set: std::collections::BTreeSet<_> = comb.iter().cloned().collect();
    let mut state: BTreeMap<NodeId, u8> = comb.iter().map(|n| (n.clone(), 0)).collect();
    fn visit(
        g: &ExprHigh,
        n: &NodeId,
        comb_set: &std::collections::BTreeSet<NodeId>,
        state: &mut BTreeMap<NodeId, u8>,
    ) -> bool {
        state.insert(n.clone(), 1);
        let (_, outs) = g.kind(n).expect("node").interface();
        for p in outs {
            if let Some(Attachment::Wire(to)) = g.consumer(&Endpoint::new(n.clone(), p)) {
                if comb_set.contains(&to.node) {
                    // Not a match guard: `visit` needs `state` mutably
                    // while the scrutinee holds it immutably.
                    #[allow(clippy::collapsible_match)]
                    match state[&to.node] {
                        1 => return true,
                        0 => {
                            if visit(g, &to.node, comb_set, state) {
                                return true;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        state.insert(n.clone(), 2);
        false
    }
    for n in &comb {
        if state[n] == 0 && visit(g, n, &comb_set, &mut state) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_ir::ep;

    /// A merge/fork ring: one cycle, no sequential element.
    fn ring() -> ExprHigh {
        let mut g = ExprHigh::new();
        g.add_node("m", CompKind::Merge).unwrap();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("k", CompKind::Sink).unwrap();
        g.expose_input("x", ep("m", "in0")).unwrap();
        g.connect(ep("m", "out"), ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("k", "in")).unwrap();
        g.connect(ep("f", "out1"), ep("m", "in1")).unwrap();
        g
    }

    #[test]
    fn back_edge_gets_a_buffer() {
        let g = ring();
        let seq = |k: &CompKind| matches!(k, CompKind::Buffer { transparent: false, .. });
        assert!(has_combinational_cycle(&g, &seq));
        let (g2, stats) = place_buffers(&g);
        assert_eq!(stats.inserted, 1);
        g2.validate().unwrap();
        assert!(!has_combinational_cycle(&g2, &seq));
    }

    #[test]
    fn tag_budget_deepens_buffers() {
        let mut g = ring();
        g.add_node("t", CompKind::TaggerUntagger { tags: 16 }).unwrap();
        // Leave the tagger dangling; placement only reads the tag budget.
        let (_, stats) = place_buffers(&g);
        assert_eq!(stats.slots, 18);
    }

    #[test]
    fn acyclic_graphs_are_untouched() {
        let mut g = ExprHigh::new();
        g.add_node("b", CompKind::Buffer { slots: 1, transparent: true }).unwrap();
        g.expose_input("x", ep("b", "in")).unwrap();
        g.expose_output("y", ep("b", "out")).unwrap();
        let (g2, stats) = place_buffers(&g);
        assert_eq!(stats.inserted, 0);
        assert_eq!(g, g2);
    }
}
