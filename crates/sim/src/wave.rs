//! Waveform recorder: per-cycle channel handshake capture into VCD.
//!
//! Every selected channel contributes three wires — `<name>.valid` (a
//! token is present), `<name>.ready` (the channel can accept one), and
//! `<name>.tag` (the front token's tag, `x` when absent or untagged).
//! Capture happens once per *active* cycle at the post-fixpoint channel
//! state, which both scheduling cores reach identically, so dumps from
//! [`crate::Scheduler::EventDriven`] and
//! [`crate::Scheduler::ReferenceSweep`] are byte-identical. Idle
//! stretches change no channel, so the change-based writer skips them
//! for free.

use graphiti_ir::Tag;
use graphiti_obs::vcd::{SignalId, VcdValue, VcdWriter};

/// Records selected channels' handshake state, one sample per active
/// cycle, into a [`VcdWriter`].
pub(crate) struct WaveRecorder {
    /// `(channel id, [valid, ready, tag] signal ids)` per selected channel.
    chans: Vec<(usize, [SignalId; 3])>,
    writer: VcdWriter,
}

impl WaveRecorder {
    /// Declares the three wires of every `(channel id, name)` pair.
    pub(crate) fn new(selected: Vec<(usize, String)>) -> WaveRecorder {
        let mut writer = VcdWriter::new();
        let chans = selected
            .into_iter()
            .map(|(c, name)| {
                let valid = writer.add_wire(&format!("{name}.valid"), 1);
                let ready = writer.add_wire(&format!("{name}.ready"), 1);
                let tag = writer.add_wire(&format!("{name}.tag"), Tag::BITS);
                (c, [valid, ready, tag])
            })
            .collect();
        WaveRecorder { chans, writer }
    }

    /// Samples every selected channel at cycle `now`; `sample` maps a
    /// channel id to `(valid, ready, front token's tag)`.
    pub(crate) fn capture(
        &mut self,
        now: u64,
        mut sample: impl FnMut(usize) -> (bool, bool, Option<Tag>),
    ) {
        for &(c, [valid, ready, tag]) in &self.chans {
            let (v, r, t) = sample(c);
            self.writer.change(now, valid, VcdValue::Bits(v as u64));
            self.writer.change(now, ready, VcdValue::Bits(r as u64));
            self.writer.change(now, tag, t.map_or(VcdValue::X, |t| VcdValue::Bits(t as u64)));
        }
    }

    /// Renders the recorded waveform as a VCD document.
    pub(crate) fn finish(self) -> String {
        self.writer.render()
    }
}
