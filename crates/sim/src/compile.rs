//! The compiled simulation backend ([`Scheduler::Compiled`]).
//!
//! Instead of interpreting the dataflow graph node-by-node, a compile pass
//! lowers the circuit into a specialised simulator once and caches the
//! artifact per circuit content-hash:
//!
//! * every node kind is monomorphised into a direct-dispatch fire function
//!   over a flat arena — the hot loop calls through a per-node `fn` pointer
//!   and never matches on a unit enum;
//! * channel valid state and the scheduler's dirty/accepted/emitted/fired
//!   state are bit-packed into `u64` words and processed word-at-a-time;
//!   tags move out-of-band as raw `u32` words next to untagged payloads, so
//!   a token crossing a tagged region never allocates a `Value::Tagged`
//!   box;
//! * in-order (arbitration-free, untagged) regions get a *static firing
//!   schedule* precomputed at compile time: a fire inside such a region
//!   re-arms the whole region's precomputed word mask instead of computing
//!   fine-grained channel fanout marks, so the region replays its fixed
//!   index-order schedule round by round. Out-of-order regions (taggers and
//!   the tagged closure behind them, plus arbitrating merges) fall back to
//!   the dynamic per-fire worklist marks.
//!
//! Bit-identity with the interpreter rests on two facts. First, the
//! word-at-a-time scan of the dirty bitset visits set bits in ascending
//! index order — exactly the order the event-driven core's `cur` heap pops
//! — and a fire marks affected nodes `j > i` into the current round and
//! `j <= i` into the next, the same `(pass, index)` discipline DESIGN.md
//! §3.7 proves equivalent to the reference sweep. Second, examining a
//! *superset* of the dirty set in index order is harmless: a node whose
//! channels did not change cannot fire, so the extra examinations are
//! no-ops. The static-region masks exploit exactly that latitude.
//!
//! The compiled artifact is immutable and shared (`Arc`) via a global
//! content-addressed cache, so bench suites compile once and simulate many;
//! per-run mutable state lives in [`rt::Rt`].

mod fire;
mod rt;
pub(crate) mod scope;

use crate::memory::Memory;
use crate::sim::{op_latency, purefn_latency, Scheduler, SimConfig, SimError, SimResult};
use fire::FireFn;
use graphiti_ir::{CompKind, ExprHigh, Op, PureFn, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Out-of-band tag word meaning "untagged".
pub(crate) const NO_TAG: u32 = u32::MAX;
/// Sentinel for "this node has no internal queue".
pub(crate) const NO_IDX: u32 = u32::MAX;

/// A `(start, len)` range into one of the artifact's flat pools.
pub(crate) type Range = (u32, u32);

/// One lowered node: its monomorphic fire function, port ranges, two
/// kind-specific parameter words, and the precomputed scheduler marks.
pub(crate) struct CNode {
    pub(crate) fire: FireFn,
    pub(crate) ins: Range,
    pub(crate) outs: Range,
    /// Kind-specific: const/op/pure/tagger/mem index, or Init's initial.
    pub(crate) p0: u32,
    /// Kind-specific: pipe index (Piped/Pure/Load), unused otherwise.
    pub(crate) p1: u32,
    /// Word masks OR-ed into the current round on fire (indices `> i`).
    pub(crate) cur_marks: Range,
    /// Word masks OR-ed into the next round on fire (indices `<= i`).
    pub(crate) nxt_marks: Range,
}

/// The coarse unit classification the scope decoder's stall walks match
/// on — exactly the `Unit` variants `walk_downstream`/`walk_upstream` in
/// `sim.rs` distinguish, so the decoded attribution mirrors the
/// interpreter's by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScopeKind {
    /// Sink (back-pressure root: the drain is the bottleneck).
    Sink,
    /// Load port (memory dependency in both walk directions).
    Load,
    /// Store port (memory dependency downstream).
    Store,
    /// Buffer (full: back-pressure root; non-empty: latency source).
    Buffer,
    /// Latency pipeline (Piped operator or Pure; non-empty: latency
    /// source).
    Pipe,
    /// Tagger (non-empty: latency source).
    Tagger,
    /// Store queue (program-order memory serialisation in both walk
    /// directions).
    Lsq,
    /// Everything else (walked through).
    Plain,
}

/// Static shape of one internal queue (pipeline, buffer).
pub(crate) struct PipeSpec {
    /// Maximum occupancy (latency + 1 for pipelines, slots for buffers).
    pub(crate) cap: usize,
    /// Cycles between acceptance and the head turning ready (0 for
    /// transparent buffers, 1 for opaque ones).
    pub(crate) lat: u64,
}

/// Static shape of one store queue, shared by its fire function and the
/// run loop. The access plans come pre-split into `(is_store, site)`
/// lists by [`crate::sim::lsq_rounds`], so the compiled and interpreted
/// schedulers allocate byte-identical pending windows.
pub(crate) struct LsqSpec {
    /// Index into [`CompiledCircuit::mems`].
    pub(crate) mem: u32,
    /// Body-round accesses `(is_store, site)` in program order.
    pub(crate) body: Vec<(bool, u32)>,
    /// Epilogue-round accesses in program order.
    pub(crate) epi: Vec<(bool, u32)>,
    /// Store-site count (load ports start after the store ports).
    pub(crate) n_stores: u32,
    /// Pending-entry capacity ([`crate::sim::lsq_pending_cap`]).
    pub(crate) cap: usize,
}

/// Compile-pass facts, kept for metrics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileStats {
    /// Lowered node count.
    pub nodes: u64,
    /// Lowered channel count (one-slot latches + external queues).
    pub chans: u64,
    /// Number of in-order regions that received a static schedule mask.
    pub regions: u64,
    /// Nodes covered by a static region schedule.
    pub static_nodes: u64,
    /// Nodes on the dynamic worklist fallback (taggers, the tagged
    /// closure behind them, and arbitrating merges).
    pub dynamic_nodes: u64,
}

/// An immutable compiled circuit: everything the run loop reads and never
/// writes. Shared via [`Arc`] through the content-hash cache.
pub(crate) struct CompiledCircuit {
    pub(crate) nodes: Vec<CNode>,
    pub(crate) names: Vec<String>,
    /// Flat pool backing every node's `ins`/`outs` channel-id lists.
    pub(crate) port_pool: Vec<u32>,
    /// Flat pool backing every node's mark lists: `(word, bits)` pairs.
    pub(crate) mark_pool: Vec<(u32, u64)>,
    /// Channels `0..n_slots` are internal one-slot latches; the rest are
    /// unbounded external queues (inputs first, then outputs), mirroring
    /// the interpreter's channel layout exactly.
    pub(crate) n_slots: usize,
    pub(crate) n_chans: usize,
    pub(crate) input_chans: BTreeMap<String, u32>,
    pub(crate) output_chans: BTreeMap<String, u32>,
    pub(crate) pipe_specs: Vec<PipeSpec>,
    /// Per node: its pipe index, or [`NO_IDX`].
    pub(crate) pipe_of: Vec<u32>,
    /// `(node, pipe)` pairs for idle fast-forward and leftover counting.
    pub(crate) queued: Vec<(u32, u32)>,
    pub(crate) consts: Vec<Value>,
    pub(crate) ops: Vec<Op>,
    pub(crate) pures: Vec<PureFn>,
    /// Tag budgets, one per tagger.
    pub(crate) tagger_tags: Vec<u32>,
    /// Static store-queue shapes, one per `StoreQueue` node.
    pub(crate) lsqs: Vec<LsqSpec>,
    /// Distinct array names referenced by Load/Store ports.
    pub(crate) mems: Vec<String>,
    /// `u64` words needed for a bitset over nodes.
    pub(crate) words: usize,
    /// Per channel: a human-readable name in the interpreter's exact
    /// format (`from.port-to.port`, `in.x`, `out.y`), feeding the scope
    /// decoder's VCD signal list and stall report.
    pub(crate) chan_names: Vec<String>,
    /// Per channel: the node that reads it, if any (single-consumer).
    pub(crate) consumer_of: Vec<Option<u32>>,
    /// Per channel: the node that writes it, if any (single-producer).
    pub(crate) producer_of: Vec<Option<u32>>,
    /// Per node: the unit classification the scope decoder's stall walks
    /// match on.
    pub(crate) scope_kind: Vec<ScopeKind>,
    pub(crate) stats: CompileStats,
    /// The 128-bit content key the artifact was cached under. Re-checked
    /// on every cache read: a stored artifact whose key no longer matches
    /// its slot is corrupted and gets quarantined instead of served.
    pub(crate) content_key: (u64, u64),
}

impl CompiledCircuit {
    #[inline]
    pub(crate) fn ports(&self, r: Range) -> &[u32] {
        &self.port_pool[r.0 as usize..(r.0 + r.1) as usize]
    }

    #[inline]
    pub(crate) fn marks(&self, r: Range) -> &[(u32, u64)] {
        &self.mark_pool[r.0 as usize..(r.0 + r.1) as usize]
    }

    /// Compile-pass facts (node/channel/region counts).
    pub(crate) fn stats(&self) -> CompileStats {
        self.stats
    }
}

/// One cached artifact with its LRU bookkeeping.
struct CacheEntry {
    art: Arc<CompiledCircuit>,
    /// Approximate resident bytes, charged against [`CACHE_MAX_BYTES`].
    bytes: usize,
    /// Last-touch tick; the minimum across entries is the LRU victim.
    tick: u64,
}

/// The artifact cache body behind the mutex: the key map plus the running
/// byte total and the monotonically increasing touch tick.
#[derive(Default)]
struct CacheState {
    map: HashMap<(u64, u64), CacheEntry>,
    bytes: usize,
    tick: u64,
}

/// The global artifact cache, keyed by 128-bit content hash.
type ArtifactCache = Mutex<CacheState>;

fn cache() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheState::default()))
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static CACHE_QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Entry cap: evicting least-recently-used artifacts above this count
/// bounds fuzzing runs, which compile thousands of distinct throwaway
/// circuits.
const CACHE_CAP: usize = 256;

/// Byte cap on resident artifacts (approximate accounting), so a
/// long-running suite over large kernels cannot exhaust memory even
/// before it reaches [`CACHE_CAP`] entries.
const CACHE_MAX_BYTES: usize = 64 << 20;

/// Approximate heap footprint of one artifact, for the byte cap. Counts
/// the large flat arrays and strings; per-element constants under-count a
/// little, which only makes eviction slightly lazier.
fn approx_bytes(art: &CompiledCircuit) -> usize {
    std::mem::size_of::<CompiledCircuit>()
        + art.nodes.len() * std::mem::size_of::<CNode>()
        + art.port_pool.len() * std::mem::size_of::<u32>()
        + art.mark_pool.len() * std::mem::size_of::<(u32, u64)>()
        + art.names.iter().map(String::len).sum::<usize>()
        + art.chan_names.iter().map(String::len).sum::<usize>()
        + (art.consumer_of.len() + art.producer_of.len() + art.pipe_of.len()) * 8
        + art.scope_kind.len()
        + art.lsqs.iter().map(|l| (l.body.len() + l.epi.len()) * 8).sum::<usize>()
}

/// Two independently seeded hashers fed identical bytes, so one graph
/// walk yields a 128-bit fingerprint. Doubles as a [`std::fmt::Write`]
/// sink: node kinds stream their `Debug` rendering straight into the
/// hashers without materialising the string, which matters because the
/// key is recomputed on every `Scheduler::Compiled` simulate call.
struct DualHasher(
    std::collections::hash_map::DefaultHasher,
    std::collections::hash_map::DefaultHasher,
);

impl DualHasher {
    fn with_seeds(s1: u64, s2: u64) -> Self {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        s1.hash(&mut h1);
        s2.hash(&mut h2);
        DualHasher(h1, h2)
    }

    fn finish_pair(&self) -> (u64, u64) {
        (self.0.finish(), self.1.finish())
    }
}

impl std::hash::Hasher for DualHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
        self.1.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.finish_pair().0
    }
}

impl std::fmt::Write for DualHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        std::hash::Hasher::write(self, s.as_bytes());
        // Length-prefix framing is lost when streaming; a separator byte
        // keeps adjacent fragments from gluing into ambiguous strings.
        std::hash::Hasher::write(self, &[0xFF]);
        Ok(())
    }
}

/// A 128-bit structural fingerprint of the circuit plus the config facts
/// the lowering bakes in (`load_latency` feeds Load and Pure pipeline
/// depths). Two independently seeded 64-bit hashes make an accidental
/// collision across a fuzzing campaign negligible.
fn content_key(g: &ExprHigh, cfg: &SimConfig) -> (u64, u64) {
    use std::fmt::Write as _;
    let mut h = DualHasher::with_seeds(0xA5A5_5A5A_C0DE_0001, 0x5A5A_A5A5_C0DE_0002);
    cfg.load_latency.hash(&mut h);
    for (name, kind) in g.nodes() {
        name.hash(&mut h);
        let _ = write!(h, "{kind:?}");
    }
    for (from, to) in g.edges() {
        from.node.hash(&mut h);
        from.port.hash(&mut h);
        to.node.hash(&mut h);
        to.port.hash(&mut h);
    }
    for (name, target) in g.inputs() {
        name.hash(&mut h);
        target.node.hash(&mut h);
        target.port.hash(&mut h);
    }
    for (name, source) in g.outputs() {
        name.hash(&mut h);
        source.node.hash(&mut h);
        source.port.hash(&mut h);
    }
    h.finish_pair()
}

/// Returns the compiled artifact for `g`, lowering it on a cache miss.
/// The lowering runs under a `sim.compile` span, so causal profiles
/// attribute compile time separately from simulation time.
pub(crate) fn get_or_compile(
    g: &ExprHigh,
    cfg: &SimConfig,
) -> Result<Arc<CompiledCircuit>, SimError> {
    let key = content_key(g, cfg);
    {
        let mut state = cache().lock().expect("compile cache poisoned");
        if let Some(entry) = state.map.get_mut(&key) {
            // Re-verify the stored artifact against the lookup key before
            // serving it; the `cache.read` failpoint models in-memory
            // corruption the check would catch.
            let corrupted =
                entry.art.content_key != key || graphiti_obs::failpoint::should_fail("cache.read");
            if !corrupted {
                state.tick += 1;
                let tick = state.tick;
                let entry = state.map.get_mut(&key).expect("entry just found");
                entry.tick = tick;
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                if graphiti_obs::enabled() {
                    graphiti_obs::counter("sim.compile.cache_hits").inc();
                }
                return Ok(entry.art.clone());
            }
            let evicted = state.map.remove(&key).expect("entry just found");
            state.bytes = state.bytes.saturating_sub(evicted.bytes);
            CACHE_QUARANTINED.fetch_add(1, Ordering::Relaxed);
            if graphiti_obs::enabled() {
                graphiti_obs::counter("sim.compile.quarantined").inc();
            }
            drop(state);
            graphiti_obs::flight::record("cache.quarantine", || {
                format!("corrupted artifact under key {:016x}{:016x}; recompiling", key.0, key.1)
            });
        }
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let _span = graphiti_obs::span("sim.compile");
    if graphiti_obs::failpoint::should_fail("compile.lower") {
        return Err(SimError::Injected("compile.lower".into()));
    }
    let t0 = std::time::Instant::now();
    let mut circuit = lower(g, cfg)?;
    circuit.content_key = key;
    let art = Arc::new(circuit);
    if graphiti_obs::enabled() {
        let stats = art.stats();
        graphiti_obs::counter("sim.compile.cache_misses").inc();
        graphiti_obs::counter("sim.compile.us").add(t0.elapsed().as_micros() as u64);
        graphiti_obs::counter("sim.compile.nodes").add(stats.nodes);
        graphiti_obs::counter("sim.compile.chans").add(stats.chans);
        graphiti_obs::counter("sim.sched.region.count").add(stats.regions);
        graphiti_obs::counter("sim.sched.region.static_nodes").add(stats.static_nodes);
        graphiti_obs::counter("sim.sched.region.dynamic_nodes").add(stats.dynamic_nodes);
    }
    let bytes = approx_bytes(&art);
    let mut state = cache().lock().expect("compile cache poisoned");
    state.tick += 1;
    let tick = state.tick;
    // LRU eviction against both caps before admitting the new artifact.
    while !state.map.is_empty()
        && (state.map.len() >= CACHE_CAP || state.bytes + bytes > CACHE_MAX_BYTES)
    {
        let victim = *state.map.iter().min_by_key(|(_, e)| e.tick).expect("non-empty map").0;
        let evicted = state.map.remove(&victim).expect("victim present");
        state.bytes = state.bytes.saturating_sub(evicted.bytes);
        CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        if graphiti_obs::enabled() {
            graphiti_obs::counter("sim.compile.evictions").inc();
        }
    }
    state.bytes += bytes;
    state.map.insert(key, CacheEntry { art: art.clone(), bytes, tick });
    Ok(art)
}

/// Lowers and caches the circuit without running it, so later
/// [`simulate`](crate::simulate) calls under [`Scheduler::Compiled`] hit
/// the artifact cache. Useful to price compile-once/simulate-many
/// amortisation in benchmarks. Returns the compile-pass facts (node,
/// channel, and static-region counts).
///
/// # Errors
///
/// Fails like [`Simulator::new`](crate::Simulator::new) on graphs the
/// simulator rejects.
pub fn precompile(g: &ExprHigh, cfg: &SimConfig) -> Result<CompileStats, SimError> {
    let mut cfg = cfg.clone();
    cfg.scheduler = Scheduler::Compiled;
    get_or_compile(g, &cfg).map(|art| art.stats())
}

/// Empties the compiled-artifact cache (benchmark and test hygiene).
pub fn compile_cache_clear() {
    let mut state = cache().lock().expect("compile cache poisoned");
    state.map.clear();
    state.bytes = 0;
}

/// `(hits, misses)` of the compiled-artifact cache since process start.
pub fn compile_cache_stats() -> (u64, u64) {
    (CACHE_HITS.load(Ordering::Relaxed), CACHE_MISSES.load(Ordering::Relaxed))
}

/// `(evictions, quarantined, resident entries, resident bytes)` of the
/// compiled-artifact cache: lifetime counters for LRU evictions and
/// corrupted-artifact quarantines, plus the current footprint.
pub fn compile_cache_detail() -> (u64, u64, usize, usize) {
    let state = cache().lock().expect("compile cache poisoned");
    (
        CACHE_EVICTIONS.load(Ordering::Relaxed),
        CACHE_QUARANTINED.load(Ordering::Relaxed),
        state.map.len(),
        state.bytes,
    )
}

/// Runs a compiled circuit to quiescence. The public entry point is
/// [`Simulator::run`](crate::Simulator::run), which delegates here when
/// the scheduler is [`Scheduler::Compiled`].
pub(crate) fn run(
    art: &CompiledCircuit,
    feeds: &BTreeMap<String, Vec<Value>>,
    memory: Memory,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    rt::run(art, feeds, memory, cfg)
}

/// Splits a full interpreter-shaped value into the out-of-band `(tag,
/// payload)` channel representation: exactly `take_tag`, with the tag
/// narrowed to a raw word.
#[inline]
pub(crate) fn canon(tag: u32, v: Value) -> (u32, Value) {
    if tag == NO_TAG {
        match v {
            Value::Tagged(t, inner) => (t, *inner),
            v => (NO_TAG, v),
        }
    } else {
        (tag, v)
    }
}

/// Reassembles the full interpreter-shaped value (error messages, output
/// draining, tagger bookkeeping — cold paths only).
#[inline]
pub(crate) fn assemble(tag: u32, v: Value) -> Value {
    if tag == NO_TAG {
        v
    } else {
        Value::tagged(tag, v)
    }
}

/// The lowering pass: interprets the graph's structure once so the run
/// loop never has to. Mirrors the interpreter's channel/node layout
/// exactly — node and channel indices coincide, which is what makes the
/// firing order (and thus every observable) bit-identical.
fn lower(g: &ExprHigh, cfg: &SimConfig) -> Result<CompiledCircuit, SimError> {
    g.validate().map_err(|e| SimError::BadGraph(e.to_string()))?;

    // Channel layout: one slot per edge, then unbounded queues for the
    // external inputs and outputs — the same order Simulator::new uses.
    let mut chan_of_out: BTreeMap<graphiti_ir::Endpoint, u32> = BTreeMap::new();
    let mut chan_of_in: BTreeMap<graphiti_ir::Endpoint, u32> = BTreeMap::new();
    // Channel names are baked into the (config-agnostic, cached) artifact
    // so a telemetry run never re-derives them; the format matches the
    // interpreter's byte for byte.
    let mut chan_names: Vec<String> = Vec::new();
    let mut n_chans: usize = 0;
    for (from, to) in g.edges() {
        let id = narrow_chan(n_chans)?;
        chan_of_out.insert(from.clone(), id);
        chan_of_in.insert(to.clone(), id);
        chan_names.push(format!("{}.{}-{}.{}", from.node, from.port, to.node, to.port));
        n_chans += 1;
    }
    let n_slots = n_chans;
    let mut input_chans = BTreeMap::new();
    for (name, target) in g.inputs() {
        let id = narrow_chan(n_chans)?;
        chan_of_in.insert(target.clone(), id);
        input_chans.insert(name.clone(), id);
        chan_names.push(format!("in.{name}"));
        n_chans += 1;
    }
    let mut output_chans = BTreeMap::new();
    for (name, source) in g.outputs() {
        let id = narrow_chan(n_chans)?;
        chan_of_out.insert(source.clone(), id);
        output_chans.insert(name.clone(), id);
        chan_names.push(format!("out.{name}"));
        n_chans += 1;
    }

    let mut names = Vec::new();
    let mut port_pool: Vec<u32> = Vec::new();
    let mut nodes: Vec<CNode> = Vec::new();
    let mut consts: Vec<Value> = Vec::new();
    let mut ops: Vec<Op> = Vec::new();
    let mut pures: Vec<PureFn> = Vec::new();
    let mut pipe_specs: Vec<PipeSpec> = Vec::new();
    let mut pipe_of: Vec<u32> = Vec::new();
    let mut tagger_of: Vec<u32> = Vec::new();
    let mut tagger_tags: Vec<u32> = Vec::new();
    let mut lsqs: Vec<LsqSpec> = Vec::new();
    let mut mems: Vec<String> = Vec::new();
    let mut queued: Vec<(u32, u32)> = Vec::new();
    let mut scope_kind: Vec<ScopeKind> = Vec::new();
    // Merges arbitrate between inputs and taggers reorder: both (plus the
    // tagged closure computed below) stay on the dynamic worklist.
    let mut dynamic: Vec<bool> = Vec::new();
    let mut tagger_nodes: Vec<usize> = Vec::new();

    let mem_id = |mems: &mut Vec<String>, name: &str| -> u32 {
        match mems.iter().position(|m| m == name) {
            Some(i) => i as u32,
            None => {
                mems.push(name.to_string());
                (mems.len() - 1) as u32
            }
        }
    };

    for (name, kind) in g.nodes() {
        let i = nodes.len();
        narrow_node(i)?;
        let (ins_p, outs_p) = kind.interface();
        let ins_start = port_pool.len() as u32;
        for p in &ins_p {
            port_pool.push(chan_of_in[&graphiti_ir::ep(name.clone(), p.clone())]);
        }
        let ins = (ins_start, ins_p.len() as u32);
        let outs_start = port_pool.len() as u32;
        for p in &outs_p {
            port_pool.push(chan_of_out[&graphiti_ir::ep(name.clone(), p.clone())]);
        }
        let outs = (outs_start, outs_p.len() as u32);

        let mut pipe = NO_IDX;
        let mut tagger = NO_IDX;
        let mut dyn_node = false;
        let add_pipe = |specs: &mut Vec<PipeSpec>, cap: usize, lat: u64| -> u32 {
            specs.push(PipeSpec { cap, lat });
            (specs.len() - 1) as u32
        };
        let (fire, p0, p1): (FireFn, u32, u32) = match kind {
            CompKind::Fork { .. } => (fire::fork, 0, 0),
            CompKind::Join => (fire::join, 0, 0),
            CompKind::Split => (fire::split, 0, 0),
            CompKind::Mux => (fire::mux, 0, 0),
            CompKind::Branch => (fire::branch, 0, 0),
            CompKind::Merge => {
                dyn_node = true;
                (fire::merge, 0, 0)
            }
            CompKind::Init { initial } => (fire::init, u32::from(*initial), 0),
            CompKind::Sink => (fire::sink, 0, 0),
            CompKind::Constant { value } => {
                consts.push(value.clone());
                (fire::constant, (consts.len() - 1) as u32, 0)
            }
            CompKind::Operator { op } => {
                let lat = op_latency(*op);
                ops.push(*op);
                let oid = (ops.len() - 1) as u32;
                if lat == 0 {
                    (fire::comb, oid, 0)
                } else {
                    pipe = add_pipe(&mut pipe_specs, lat as usize + 1, lat);
                    (fire::piped, oid, pipe)
                }
            }
            CompKind::Pure { func } => {
                let lat = purefn_latency(func, cfg.load_latency);
                pures.push(func.clone());
                pipe = add_pipe(&mut pipe_specs, lat as usize + 1, lat);
                (fire::pure, (pures.len() - 1) as u32, pipe)
            }
            CompKind::Buffer { slots, transparent } => {
                pipe = add_pipe(&mut pipe_specs, (*slots).max(1), u64::from(!*transparent));
                (fire::buffer, pipe, 0)
            }
            CompKind::TaggerUntagger { tags } => {
                tagger_tags.push(*tags);
                tagger = (tagger_tags.len() - 1) as u32;
                dyn_node = true;
                tagger_nodes.push(i);
                (fire::tagger, tagger, 0)
            }
            CompKind::Load { mem } => {
                let mid = mem_id(&mut mems, mem);
                pipe = add_pipe(&mut pipe_specs, cfg.load_latency as usize + 1, cfg.load_latency);
                (fire::load, mid, pipe)
            }
            CompKind::Store { mem } => (fire::store, mem_id(&mut mems, mem), 0),
            CompKind::StoreQueue { mem, body_plan, epi_plan } => {
                let mid = mem_id(&mut mems, mem);
                let (body, epi) = crate::sim::lsq_rounds(body_plan, epi_plan);
                let (stores, _) = graphiti_ir::lsq_site_counts(body_plan, epi_plan);
                lsqs.push(LsqSpec {
                    mem: mid,
                    body,
                    epi,
                    n_stores: stores as u32,
                    cap: crate::sim::lsq_pending_cap(body_plan, epi_plan),
                });
                pipe = add_pipe(&mut pipe_specs, cfg.load_latency as usize + 1, cfg.load_latency);
                (fire::lsq, (lsqs.len() - 1) as u32, pipe)
            }
        };
        if pipe != NO_IDX {
            queued.push((i as u32, pipe));
        }
        // The same Unit-variant distinctions the interpreter's stall walks
        // make: a zero-latency operator lowers to `comb` and is walked
        // through, a latency-bearing one holds tokens like Pure does.
        scope_kind.push(match kind {
            CompKind::Sink => ScopeKind::Sink,
            CompKind::Load { .. } => ScopeKind::Load,
            CompKind::Store { .. } => ScopeKind::Store,
            CompKind::Buffer { .. } => ScopeKind::Buffer,
            CompKind::Operator { op } if op_latency(*op) > 0 => ScopeKind::Pipe,
            CompKind::Pure { .. } => ScopeKind::Pipe,
            CompKind::TaggerUntagger { .. } => ScopeKind::Tagger,
            CompKind::StoreQueue { .. } => ScopeKind::Lsq,
            _ => ScopeKind::Plain,
        });
        names.push(name.clone());
        pipe_of.push(pipe);
        tagger_of.push(tagger);
        dynamic.push(dyn_node);
        nodes.push(CNode { fire, ins, outs, p0, p1, cur_marks: (0, 0), nxt_marks: (0, 0) });
    }

    let n = nodes.len();
    narrow_chan(n_chans)?;
    let mut consumer_of: Vec<Option<u32>> = vec![None; n_chans];
    let mut producer_of: Vec<Option<u32>> = vec![None; n_chans];
    for (i, nd) in nodes.iter().enumerate() {
        for &c in &port_pool[nd.ins.0 as usize..(nd.ins.0 + nd.ins.1) as usize] {
            consumer_of[c as usize] = Some(i as u32);
        }
        for &c in &port_pool[nd.outs.0 as usize..(nd.outs.0 + nd.outs.1) as usize] {
            producer_of[c as usize] = Some(i as u32);
        }
    }

    // The tagged closure: everything downstream of a tagger's tagged
    // output (stopping at tagger nodes) carries reordered tokens and stays
    // on the dynamic worklist.
    let mut stack: Vec<u32> = Vec::new();
    for &t in &tagger_nodes {
        let outs =
            &port_pool[nodes[t].outs.0 as usize..(nodes[t].outs.0 + nodes[t].outs.1) as usize];
        if let Some(&tagged_out) = outs.first() {
            if let Some(j) = consumer_of[tagged_out as usize] {
                stack.push(j);
            }
        }
    }
    let mut seen = vec![false; n];
    while let Some(j) = stack.pop() {
        let ju = j as usize;
        if seen[ju] {
            continue;
        }
        seen[ju] = true;
        if tagger_of[ju] != NO_IDX {
            continue; // the region ends at the next tagger
        }
        dynamic[ju] = true;
        let nd = &nodes[ju];
        for &c in &port_pool[nd.outs.0 as usize..(nd.outs.0 + nd.outs.1) as usize] {
            if let Some(k) = consumer_of[c as usize] {
                stack.push(k);
            }
        }
    }

    // Static regions: connected components of the in-order nodes over the
    // channel adjacency. Each gets a shared schedule mask.
    let words = n.div_ceil(64);
    let mut region_of: Vec<u32> = vec![NO_IDX; n];
    let mut region_masks: Vec<Vec<u64>> = Vec::new();
    for start in 0..n {
        if dynamic[start] || region_of[start] != NO_IDX {
            continue;
        }
        let rid = region_masks.len() as u32;
        let mut mask = vec![0u64; words];
        let mut stack = vec![start as u32];
        region_of[start] = rid;
        while let Some(j) = stack.pop() {
            let ju = j as usize;
            mask[ju / 64] |= 1u64 << (ju % 64);
            let nd = &nodes[ju];
            let neighbours = port_pool[nd.ins.0 as usize..(nd.ins.0 + nd.ins.1) as usize]
                .iter()
                .filter_map(|&c| producer_of[c as usize])
                .chain(
                    port_pool[nd.outs.0 as usize..(nd.outs.0 + nd.outs.1) as usize]
                        .iter()
                        .filter_map(|&c| consumer_of[c as usize]),
                );
            for k in neighbours {
                let ku = k as usize;
                if !dynamic[ku] && region_of[ku] == NO_IDX {
                    region_of[ku] = rid;
                    stack.push(k);
                }
            }
        }
        region_masks.push(mask);
    }

    // Per-node scheduler marks. The fine affected set mirrors the
    // event-driven core's `mark!` coverage: the node itself, the consumers
    // of its outputs, the producers of its inputs. Static-region nodes
    // additionally re-arm their whole region (sound: index-order
    // examination of a superset is a no-op for unaffected nodes).
    let mut mark_pool: Vec<(u32, u64)> = Vec::new();
    let mut scratch_mask = vec![0u64; words];
    for i in 0..n {
        for w in scratch_mask.iter_mut() {
            *w = 0;
        }
        let set = |mask: &mut Vec<u64>, j: u32| {
            mask[j as usize / 64] |= 1u64 << (j % 64);
        };
        set(&mut scratch_mask, i as u32);
        let nd = &nodes[i];
        for &c in &port_pool[nd.outs.0 as usize..(nd.outs.0 + nd.outs.1) as usize] {
            if let Some(j) = consumer_of[c as usize] {
                set(&mut scratch_mask, j);
            }
        }
        for &c in &port_pool[nd.ins.0 as usize..(nd.ins.0 + nd.ins.1) as usize] {
            if let Some(j) = producer_of[c as usize] {
                set(&mut scratch_mask, j);
            }
        }
        // Static-region schedule: replace the fine set by the region's
        // precomputed mask when the region is barely wider — the shared
        // mask then costs (almost) nothing extra to examine and turns the
        // region's replay into a fixed word pattern. Wide regions keep
        // the fine dynamic-worklist marks: re-arming hundreds of idle
        // nodes per fire would swamp the win.
        if region_of[i] != NO_IDX {
            let region = &region_masks[region_of[i] as usize];
            let fine: u32 = scratch_mask.iter().map(|w| w.count_ones()).sum();
            let wide: u32 =
                region.iter().zip(&scratch_mask).map(|(r, f)| (r | f).count_ones()).sum();
            if wide <= fine + 2 {
                for (w, r) in scratch_mask.iter_mut().zip(region) {
                    *w |= r;
                }
            }
        }
        // Split at index i: strictly greater bits re-arm the current
        // round, the rest the next one.
        let wi = i / 64;
        let bi = i % 64;
        let gt_in_word = if bi == 63 { 0 } else { !0u64 << (bi + 1) };
        let cur_start = mark_pool.len() as u32;
        for (w, &bits) in scratch_mask.iter().enumerate() {
            let gt = match w.cmp(&wi) {
                std::cmp::Ordering::Less => 0,
                std::cmp::Ordering::Equal => bits & gt_in_word,
                std::cmp::Ordering::Greater => bits,
            };
            if gt != 0 {
                mark_pool.push((w as u32, gt));
            }
        }
        let cur_marks = (cur_start, mark_pool.len() as u32 - cur_start);
        let nxt_start = mark_pool.len() as u32;
        for (w, &bits) in scratch_mask.iter().enumerate() {
            let le = match w.cmp(&wi) {
                std::cmp::Ordering::Less => bits,
                std::cmp::Ordering::Equal => bits & !gt_in_word,
                std::cmp::Ordering::Greater => 0,
            };
            if le != 0 {
                mark_pool.push((w as u32, le));
            }
        }
        let nxt_marks = (nxt_start, mark_pool.len() as u32 - nxt_start);
        nodes[i].cur_marks = cur_marks;
        nodes[i].nxt_marks = nxt_marks;
    }

    let dynamic_nodes = dynamic.iter().filter(|&&d| d).count() as u64;
    let stats = CompileStats {
        nodes: n as u64,
        chans: n_chans as u64,
        regions: region_masks.len() as u64,
        static_nodes: n as u64 - dynamic_nodes,
        dynamic_nodes,
    };
    Ok(CompiledCircuit {
        nodes,
        names,
        port_pool,
        mark_pool,
        n_slots,
        n_chans,
        input_chans,
        output_chans,
        pipe_specs,
        pipe_of,
        queued,
        consts,
        ops,
        pures,
        tagger_tags,
        lsqs,
        mems,
        words,
        chan_names,
        consumer_of,
        producer_of,
        scope_kind,
        stats,
        // The cache key is assigned by `get_or_compile` at admission; a
        // bare `lower` artifact never reaches the cache.
        content_key: (0, 0),
    })
}

fn narrow_node(i: usize) -> Result<u32, SimError> {
    u32::try_from(i).map_err(|_| {
        SimError::BadGraph(format!("node index {i} does not fit the simulator's u32 index space"))
    })
}

fn narrow_chan(i: usize) -> Result<u32, SimError> {
    u32::try_from(i).map_err(|_| {
        SimError::BadGraph(format!(
            "channel index {i} does not fit the simulator's u32 index space"
        ))
    })
}
