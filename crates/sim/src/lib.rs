//! Cycle-accurate simulation, buffer placement, timing, and area models for
//! elastic dataflow circuits.
//!
//! This crate is the performance substrate of the reproduction: it plays the
//! role of ModelSim (cycle counts), Vivado (clock period and LUT/FF/DSP
//! after place-and-route), and Dynamatic's buffer placement in the paper's
//! evaluation flow (§6.1):
//!
//! * [`simulate`] / [`Simulator`] — latency-insensitive cycle simulation
//!   with pipelined functional units, tag-transparent computation, a
//!   reorder-buffer Tagger/Untagger, and an arrival-order store model;
//! * [`place_buffers`] — deadlock-avoiding buffer placement (opaque buffers
//!   on every back-edge, sized to the tag budget);
//! * [`elastic_clock_period`] — longest register-to-register path;
//! * [`circuit_area`] — LUT/FF/DSP totals.
//!
//! # Example
//!
//! ```
//! use graphiti_ir::{ep, CompKind, ExprHigh, Op, Value};
//! use graphiti_sim::{simulate, Memory, SimConfig};
//! use std::collections::BTreeMap;
//!
//! let mut g = ExprHigh::new();
//! g.add_node("f", CompKind::Fork { ways: 2 })?;
//! g.add_node("m", CompKind::Operator { op: Op::MulF })?;
//! g.expose_input("x", ep("f", "in"))?;
//! g.connect(ep("f", "out0"), ep("m", "in0"))?;
//! g.connect(ep("f", "out1"), ep("m", "in1"))?;
//! g.expose_output("y", ep("m", "out"))?;
//!
//! let feeds: BTreeMap<String, Vec<Value>> =
//!     [("x".to_string(), vec![Value::from_f64(3.0)])].into_iter().collect();
//! let r = simulate(&g, &feeds, Memory::new(), SimConfig::default())?;
//! assert_eq!(r.outputs["y"], vec![Value::from_f64(9.0)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod area;
mod compile;
mod memory;
mod place;
mod sim;
pub mod stall;
mod timing;
mod wave;

pub use area::{circuit_area, component_area, op_area, Area};
pub use compile::{
    compile_cache_clear, compile_cache_detail, compile_cache_stats, precompile, CompileStats,
};
pub use memory::{mem_read, mem_write, MemError, Memory};
pub use place::{has_combinational_cycle, place_buffers, place_buffers_targeted, PlacementStats};
pub use sim::{
    op_latency, purefn_latency, simulate, Scheduler, SimConfig, SimError, SimResult, Simulator,
    TraceEvent,
};
pub use stall::{
    DeadlockReport, NodeWaitStats, StallCause, StallChain, StallReport, StuckNode, STALL_CAUSES,
};
pub use timing::{
    arrival_times, clock_period, elastic_clock_period, elastic_timing, is_sequential, NodeTiming,
    TimingError,
};
