//! The compiled backend's scope unit: a hardware-style event log and its
//! post-hoc decoder (DESIGN.md §3.12).
//!
//! The interpreted schedulers observe for free — they hold `Value`-shaped
//! channels a waveform recorder or stall walker can inspect in place. The
//! compiled backend's state is bit-packed and tag-split, so observing it
//! directly from the run loop would re-introduce exactly the per-fire
//! branching the lowering removed. Instead, [`Scope::capture`] appends one
//! compact binary *frame* per active cycle to a growable `u64` log —
//! XOR deltas of the channel-valid bitset, the fired bitset's non-zero
//! words, and change-listed front-tag / pipe-occupancy / tagger-occupancy
//! words — and [`decode`] replays the log after the run through the *same*
//! [`WaveRecorder`] and [`StallState`] machinery the interpreter uses.
//!
//! Invariants the decoder relies on (and the differential suite pins):
//!
//! * frames are captured at the post-fixpoint state of each active cycle,
//!   before the clock advances — the instant the interpreter samples — so
//!   the reconstructed VCD is byte-identical to the event-driven
//!   scheduler's;
//! * the replayed stall walks match on [`ScopeKind`], the exact `Unit`
//!   classification of `walk_downstream`/`walk_upstream` in `sim.rs`, over
//!   the same single-producer/single-consumer tables, so every attributed
//!   node-cycle lands on the same cause, path, and per-cause sums equal
//!   the stall/starve totals by construction;
//! * with a waveform sampling stride `N > 1`, only every `N`-th active
//!   cycle is marked wave-sampled (bit 0 of the frame's cycle word), but
//!   attribution frames are still captured every active cycle — sampling
//!   bounds the *waveform*, not the attribution.

use super::rt::Rt;
use super::{CompiledCircuit, ScopeKind, NO_TAG};
use crate::sim::SimConfig;
use crate::stall::{StallCause, StallReport, StallState};
use crate::wave::WaveRecorder;

/// The scope recorder: per-active-cycle delta frames in a flat `u64` log.
pub(crate) struct Scope {
    /// Waveform sampling stride (`SimConfig::wave_stride`).
    stride: u64,
    /// Whether a waveform will be decoded (frames may be wave-sampled).
    wave: bool,
    /// Whether attribution will be decoded (frames every active cycle).
    attr: bool,
    /// Active cycles seen so far (sampling phase).
    actives: u64,
    /// Frames captured.
    pub(crate) frames: u64,
    /// The event log.
    pub(crate) log: Vec<u64>,
    /// Channel-valid bitset as of the previous frame.
    prev_valid: Vec<u64>,
    /// Scratch for the current frame's valid bitset.
    cur_valid: Vec<u64>,
    /// Display tag per channel as of the previous frame ([`NO_TAG`]:
    /// vacant or untagged — both render as `x` in the VCD).
    prev_tag: Vec<u32>,
    /// Pipe occupancies as of the previous frame.
    prev_pipe: Vec<u32>,
    /// Tagger occupancies as of the previous frame.
    prev_tagger: Vec<u32>,
}

/// Whether bit `c` is set in a packed bitset.
#[inline]
fn bit(words: &[u64], c: u32) -> bool {
    words[c as usize / 64] >> (c % 64) & 1 != 0
}

impl Scope {
    pub(crate) fn new(art: &CompiledCircuit, cfg: &SimConfig) -> Scope {
        let vwords = art.n_chans.div_ceil(64);
        Scope {
            stride: cfg.wave_stride(),
            wave: cfg.waveform,
            attr: cfg.attribute_stalls,
            actives: 0,
            frames: 0,
            log: Vec::new(),
            prev_valid: vec![0; vwords],
            cur_valid: vec![0; vwords],
            prev_tag: vec![NO_TAG; art.n_chans],
            prev_pipe: vec![0; art.pipe_specs.len()],
            prev_tagger: vec![0; art.tagger_tags.len()],
        }
    }

    /// Appends one frame for the active cycle that just reached fixpoint.
    /// Must run before the clock advances and before the fired bitset
    /// resets.
    pub(crate) fn capture(&mut self, art: &CompiledCircuit, rt: &Rt) {
        let sampled = self.actives.is_multiple_of(self.stride);
        self.actives += 1;
        if !(self.attr || (self.wave && sampled)) {
            return;
        }
        self.frames += 1;
        self.log.push(rt.now << 1 | u64::from(sampled));

        // Channel-valid deltas: the slot words verbatim (slot index ==
        // channel index == bit index), with each non-empty external
        // queue's bit OR-ed in above them.
        let sw = rt.slot_full.len();
        self.cur_valid[..sw].copy_from_slice(&rt.slot_full);
        for w in &mut self.cur_valid[sw..] {
            *w = 0;
        }
        for (qi, q) in rt.queues.iter().enumerate() {
            if !q.is_empty() {
                let c = art.n_slots + qi;
                self.cur_valid[c / 64] |= 1u64 << (c % 64);
            }
        }
        let pos = self.log.len();
        self.log.push(0);
        let mut n = 0u64;
        for (w, (cur, prev)) in self.cur_valid.iter().zip(&mut self.prev_valid).enumerate() {
            let x = cur ^ *prev;
            if x != 0 {
                self.log.push(w as u64);
                self.log.push(x);
                *prev = *cur;
                n += 1;
            }
        }
        self.log[pos] = n;

        // Fired bitset: absolute non-zero words (it resets every cycle,
        // so deltas would not compress it).
        let pos = self.log.len();
        self.log.push(0);
        let mut n = 0u64;
        for (w, &bits) in rt.fired.iter().enumerate() {
            if bits != 0 {
                self.log.push(w as u64);
                self.log.push(bits);
                n += 1;
            }
        }
        self.log[pos] = n;

        // Front-tag changes, packed `channel << 32 | tag`.
        let pos = self.log.len();
        self.log.push(0);
        let mut n = 0u64;
        for c in 0..art.n_chans {
            let disp = if c < art.n_slots {
                if bit(&self.cur_valid, c as u32) {
                    rt.slot_tag[c]
                } else {
                    NO_TAG
                }
            } else {
                rt.queues[c - art.n_slots].front().map_or(NO_TAG, |&(t, _)| t)
            };
            if disp != self.prev_tag[c] {
                self.log.push((c as u64) << 32 | u64::from(disp));
                self.prev_tag[c] = disp;
                n += 1;
            }
        }
        self.log[pos] = n;

        // Pipe-occupancy changes, packed `pipe << 32 | len`.
        let pos = self.log.len();
        self.log.push(0);
        let mut n = 0u64;
        for (p, pipe) in rt.pipes.iter().enumerate() {
            let len = pipe.len() as u32;
            if len != self.prev_pipe[p] {
                self.log.push((p as u64) << 32 | u64::from(len));
                self.prev_pipe[p] = len;
                n += 1;
            }
        }
        self.log[pos] = n;

        // Tagger-occupancy changes, packed `tagger << 32 | len`.
        let pos = self.log.len();
        self.log.push(0);
        let mut n = 0u64;
        for (t, st) in rt.taggers.iter().enumerate() {
            let len = st.len() as u32;
            if len != self.prev_tagger[t] {
                self.log.push((t as u64) << 32 | u64::from(len));
                self.prev_tagger[t] = len;
                n += 1;
            }
        }
        self.log[pos] = n;
    }
}

/// Replayed per-channel/per-node state while decoding.
struct Replay {
    valid: Vec<u64>,
    fired: Vec<u64>,
    disp_tag: Vec<u32>,
    pipe_len: Vec<u32>,
    tagger_len: Vec<u32>,
}

/// Decodes a scope log into the waveform and stall report the interpreter
/// would have produced for the same run and configuration.
pub(crate) fn decode(
    art: &CompiledCircuit,
    log: &[u64],
    cfg: &SimConfig,
) -> (Option<String>, Option<StallReport>) {
    let mut wave = cfg.waveform.then(|| {
        // The interpreter's channel-selection predicate: everything, or —
        // under a trace_nodes filter — only channels touching a listed
        // component.
        let selected = (0..art.n_chans)
            .filter(|&c| {
                cfg.trace_nodes.is_empty()
                    || [art.producer_of[c], art.consumer_of[c]]
                        .iter()
                        .flatten()
                        .any(|&j| cfg.trace_nodes.contains(&art.names[j as usize]))
            })
            .map(|c| (c, art.chan_names[c].clone()))
            .collect();
        WaveRecorder::new(selected)
    });
    let mut ss = cfg.attribute_stalls.then(|| StallState::new(art.nodes.len(), art.n_chans));
    let mut rp = Replay {
        valid: vec![0; art.n_chans.div_ceil(64)],
        fired: vec![0; art.words],
        disp_tag: vec![NO_TAG; art.n_chans],
        pipe_len: vec![0; art.pipe_specs.len()],
        tagger_len: vec![0; art.tagger_tags.len()],
    };
    let mut cur = log.iter().copied();
    let mut next = move || cur.next().expect("well-formed scope log");
    let mut remaining = log.len();
    while remaining > 0 {
        let head = next();
        let (cycle, sampled) = (head >> 1, head & 1 != 0);
        let mut consumed = 1;
        let nv = next();
        consumed += 1 + 2 * nv as usize;
        for _ in 0..nv {
            let w = next() as usize;
            rp.valid[w] ^= next();
        }
        for w in rp.fired.iter_mut() {
            *w = 0;
        }
        let nf = next();
        consumed += 1 + 2 * nf as usize;
        for _ in 0..nf {
            let w = next() as usize;
            rp.fired[w] = next();
        }
        let nt = next();
        consumed += 1 + nt as usize;
        for _ in 0..nt {
            let p = next();
            rp.disp_tag[(p >> 32) as usize] = p as u32;
        }
        let np = next();
        consumed += 1 + np as usize;
        for _ in 0..np {
            let p = next();
            rp.pipe_len[(p >> 32) as usize] = p as u32;
        }
        let ng = next();
        consumed += 1 + ng as usize;
        for _ in 0..ng {
            let p = next();
            rp.tagger_len[(p >> 32) as usize] = p as u32;
        }
        remaining -= consumed.min(remaining);
        if let Some(ss) = &mut ss {
            attribute(art, &rp, ss);
        }
        if sampled {
            if let Some(w) = &mut wave {
                w.capture(cycle, |c| {
                    let v = bit(&rp.valid, c as u32);
                    let r = c >= art.n_slots || !v;
                    let t = (rp.disp_tag[c] != NO_TAG).then_some(rp.disp_tag[c]);
                    (v, r, t)
                });
            }
        }
    }
    (wave.map(WaveRecorder::finish), ss.map(|s| s.finish(&art.names, &art.chan_names)))
}

/// One decoded cycle's attribution pass — the compiled mirror of
/// `Simulator::attribute_cycle` plus `waiting_state`.
fn attribute(art: &CompiledCircuit, rp: &Replay, ss: &mut StallState) {
    for i in 0..art.nodes.len() {
        if bit(&rp.fired, i as u32) {
            continue;
        }
        let ins = art.ports(art.nodes[i].ins);
        if ins.is_empty() {
            continue;
        }
        let ready = ins.iter().filter(|&&c| bit(&rp.valid, c)).count();
        let cause = if ready == ins.len() {
            walk_downstream(art, rp, i, ss)
        } else if ready > 0 {
            walk_upstream(art, rp, i, ss)
        } else {
            continue;
        };
        ss.record(i, cause);
    }
}

/// Occupancy of node `j`'s internal queue (0 when it has none).
#[inline]
fn occupancy(art: &CompiledCircuit, rp: &Replay, j: usize) -> u32 {
    let pid = art.pipe_of[j];
    if pid == super::NO_IDX {
        0
    } else {
        rp.pipe_len[pid as usize]
    }
}

/// `Simulator::walk_downstream` over decoded state: follow full channels
/// to the back-pressure root.
fn walk_downstream(
    art: &CompiledCircuit,
    rp: &Replay,
    start: usize,
    ss: &mut StallState,
) -> StallCause {
    ss.epoch += 1;
    ss.path.clear();
    ss.visited[start] = ss.epoch;
    let mut cur = start;
    loop {
        // A full output: external queues always have space, so only a
        // full one-slot latch blocks.
        let outs = art.ports(art.nodes[cur].outs);
        let Some(&c) = outs.iter().find(|&&c| (c as usize) < art.n_slots && bit(&rp.valid, c))
        else {
            return StallCause::BlockedDownstream;
        };
        ss.path.push(c);
        let Some(j) = art.consumer_of[c as usize] else { return StallCause::BlockedDownstream };
        let j = j as usize;
        match art.scope_kind[j] {
            ScopeKind::Sink => return StallCause::BlockedBySink,
            ScopeKind::Store | ScopeKind::Load => return StallCause::MemoryDependency,
            ScopeKind::Lsq => return StallCause::LsqOrdering,
            ScopeKind::Buffer
                if occupancy(art, rp, j) as usize
                    >= art.pipe_specs[art.pipe_of[j] as usize].cap =>
            {
                return StallCause::BlockedByFullBuffer
            }
            _ => {}
        }
        if ss.visited[j] == ss.epoch {
            return StallCause::BlockedDownstream;
        }
        ss.visited[j] = ss.epoch;
        cur = j;
    }
}

/// `Simulator::walk_upstream` over decoded state: follow empty channels
/// to the starvation root.
fn walk_upstream(
    art: &CompiledCircuit,
    rp: &Replay,
    start: usize,
    ss: &mut StallState,
) -> StallCause {
    ss.epoch += 1;
    ss.path.clear();
    ss.visited[start] = ss.epoch;
    let mut cur = start;
    loop {
        let ins = art.ports(art.nodes[cur].ins);
        let Some(&c) = ins.iter().find(|&&c| !bit(&rp.valid, c)) else {
            return StallCause::StarvedUpstream;
        };
        ss.path.push(c);
        let Some(j) = art.producer_of[c as usize] else {
            return StallCause::StarvedBySource;
        };
        let j = j as usize;
        match art.scope_kind[j] {
            ScopeKind::Load if occupancy(art, rp, j) > 0 => return StallCause::MemoryDependency,
            ScopeKind::Lsq if occupancy(art, rp, j) > 0 => return StallCause::LsqOrdering,
            ScopeKind::Pipe | ScopeKind::Buffer if occupancy(art, rp, j) > 0 => {
                return StallCause::PipelineLatency
            }
            ScopeKind::Tagger if rp.tagger_len[art.nodes[j].p0 as usize] > 0 => {
                return StallCause::PipelineLatency
            }
            _ => {}
        }
        if ss.visited[j] == ss.epoch {
            return StallCause::StarvedUpstream;
        }
        ss.visited[j] = ss.epoch;
        cur = j;
    }
}
