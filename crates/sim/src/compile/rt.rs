//! Per-run mutable state and the word-at-a-time drive loop of the
//! compiled backend.
//!
//! All per-node scheduler state (dirty current/next rounds, per-cycle
//! accepted/emitted caps, fired-this-cycle) is bit-packed into `u64`
//! words; the inner loop scans the current round's words low-to-high with
//! `trailing_zeros`, which visits set bits in ascending node-index order —
//! the exact drain order the event-driven heap produces. Channel payloads
//! live in flat arrays with their tags out-of-band as raw `u32` words, so
//! tag moves are plain word copies instead of `Box` traffic.

use super::scope::Scope;
use super::{assemble, canon, CompiledCircuit, ScopeKind, NO_IDX, NO_TAG};
use crate::memory::{MemError, Memory};
use crate::sim::{SimConfig, SimError, SimResult, TraceEvent};
use crate::stall::{DeadlockReport, StallCause, StallState, StuckNode};
use graphiti_ir::Value;
use graphiti_sem::TaggerState;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Run-time memory: the interpreter's `BTreeMap` flattened into parallel
/// vectors, with Load/Store array names pre-resolved to indices so the
/// hot path never walks a string-keyed map.
pub(super) struct RtMem {
    names: Vec<String>,
    arrays: Vec<Vec<Value>>,
    /// Artifact memory id → array index (None: the run's memory lacks the
    /// array; accessing it raises the interpreter's exact error).
    resolved: Vec<Option<u32>>,
}

impl RtMem {
    fn new(art: &CompiledCircuit, memory: Memory) -> RtMem {
        let mut names = Vec::with_capacity(memory.len());
        let mut arrays = Vec::with_capacity(memory.len());
        for (name, arr) in memory {
            names.push(name);
            arrays.push(arr);
        }
        let resolved =
            art.mems.iter().map(|m| names.iter().position(|n| n == m).map(|i| i as u32)).collect();
        RtMem { names, arrays, resolved }
    }

    /// `mem_read` over the split representation: same checks, same error
    /// order (address shape, array existence, bounds), same messages.
    pub(super) fn read(
        &self,
        art: &CompiledCircuit,
        mid: u32,
        addr_payload: &Value,
    ) -> Result<Value, MemError> {
        let name = &art.mems[mid as usize];
        let i = addr_payload.as_int().ok_or_else(|| MemError::BadAddress(name.clone()))?;
        let ai = self.resolved[mid as usize].ok_or_else(|| MemError::UnknownArray(name.clone()))?;
        self.arrays[ai as usize]
            .get(i as usize)
            .cloned()
            .ok_or_else(|| MemError::OutOfBounds(name.clone(), i))
    }

    /// `mem_write` over the split representation (tags already stripped by
    /// the channel layout).
    pub(super) fn write(
        &mut self,
        art: &CompiledCircuit,
        mid: u32,
        addr_payload: &Value,
        data_payload: &Value,
    ) -> Result<(), MemError> {
        let name = &art.mems[mid as usize];
        let i = addr_payload.as_int().ok_or_else(|| MemError::BadAddress(name.clone()))?;
        let ai = self.resolved[mid as usize].ok_or_else(|| MemError::UnknownArray(name.clone()))?;
        let arr = &mut self.arrays[ai as usize];
        let slot = arr.get_mut(i as usize).ok_or_else(|| MemError::OutOfBounds(name.clone(), i))?;
        // The channel layout already stripped the one tag level
        // `mem_write` strips; the payload is stored as-is.
        *slot = data_payload.clone();
        Ok(())
    }

    /// The `Pure` closure's by-name read: any failure yields `Int(0)`,
    /// matching `mem_read(..).unwrap_or(Int(0))`.
    pub(super) fn read_or_zero(&self, name: &str, addr: i64) -> Value {
        self.names
            .iter()
            .position(|n| n == name)
            .and_then(|ai| self.arrays[ai].get(addr as usize))
            .cloned()
            .unwrap_or(Value::Int(0))
    }

    fn into_memory(self) -> Memory {
        self.names.into_iter().zip(self.arrays).collect()
    }
}

/// Mutable per-run state of a compiled circuit.
pub(crate) struct Rt {
    // -- channels --
    /// Valid bits of the one-slot latch channels, packed.
    pub(super) slot_full: Vec<u64>,
    /// Out-of-band tag per slot ([`NO_TAG`]: untagged).
    pub(super) slot_tag: Vec<u32>,
    /// Payload per slot (`Value::Unit` when vacant).
    slot_val: Vec<Value>,
    /// External queues (inputs, then outputs), indexed by `chan - n_slots`.
    pub(super) queues: Vec<VecDeque<(u32, Value)>>,
    n_slots: usize,
    // -- per-node bitsets --
    accepted: Vec<u64>,
    emitted: Vec<u64>,
    pub(super) fired: Vec<u64>,
    init_done: Vec<u64>,
    pub(super) cur: Vec<u64>,
    nxt: Vec<u64>,
    // -- unit state --
    /// Internal queues as `(tag, payload, ready)` rings.
    pub(super) pipes: Vec<VecDeque<(u32, Value, u64)>>,
    pub(super) taggers: Vec<TaggerState>,
    /// Per store queue: allocated accesses `(is_store, site)` not yet
    /// committed/issued, oldest first.
    pub(super) lsq_pending: Vec<VecDeque<(bool, u32)>>,
    /// Per store queue: load site of each in-flight pipe entry, aligned
    /// with the queue's pipe ring (the pipe's tag word stays a real tag).
    pub(super) lsq_sites: Vec<VecDeque<u32>>,
    /// `sim.lsq.*` tallies across every store queue, flushed at finish.
    pub(super) lsq_stats: crate::sim::LsqStats,
    pub(super) mem: RtMem,
    pub(super) scratch: Vec<Value>,
    // -- clock and accounting --
    pub(super) now: u64,
    firings: u64,
    last_active: u64,
    firings_by_node: Vec<u64>,
    examined: u64,
    pushes: u64,
    // -- telemetry --
    /// Scope recorder, present when [`SimConfig::telemetry`] requests a
    /// waveform or stall attribution. Boxed to keep the hot struct lean.
    scope: Option<Box<Scope>>,
    /// Whether any node is traced (checked first on the fire fast path).
    pub(super) tracing: bool,
    /// Per-node traced flags (empty when `tracing` is off).
    traced: Vec<bool>,
    /// Raw acceptance events `(cycle, node, consumed values)`.
    pub(super) trace_buf: Vec<(u64, u32, Vec<Value>)>,
}

impl Rt {
    fn new(art: &CompiledCircuit, memory: Memory, cfg: &SimConfig) -> Rt {
        let scoped = cfg.telemetry && (cfg.waveform || cfg.attribute_stalls);
        let tracing = cfg.telemetry && !cfg.trace_nodes.is_empty();
        let words = art.words;
        Rt {
            slot_full: vec![0; art.n_slots.div_ceil(64)],
            slot_tag: vec![NO_TAG; art.n_slots],
            slot_val: vec![Value::Unit; art.n_slots],
            queues: vec![VecDeque::new(); art.n_chans - art.n_slots],
            n_slots: art.n_slots,
            accepted: vec![0; words],
            emitted: vec![0; words],
            fired: vec![0; words],
            init_done: vec![0; words],
            cur: vec![0; words],
            nxt: vec![0; words],
            pipes: art
                .pipe_specs
                .iter()
                .map(|s| VecDeque::with_capacity(s.cap.min(1024)))
                .collect(),
            taggers: art.tagger_tags.iter().map(|&t| TaggerState::new(t)).collect(),
            lsq_pending: art.lsqs.iter().map(|l| VecDeque::with_capacity(l.cap)).collect(),
            lsq_sites: art.lsqs.iter().map(|_| VecDeque::new()).collect(),
            lsq_stats: crate::sim::LsqStats::default(),
            mem: RtMem::new(art, memory),
            scratch: Vec::new(),
            now: 0,
            firings: 0,
            last_active: 0,
            firings_by_node: vec![0; art.nodes.len()],
            examined: 0,
            pushes: 0,
            scope: scoped.then(|| Box::new(Scope::new(art, cfg))),
            tracing,
            traced: if tracing {
                art.names.iter().map(|n| cfg.trace_nodes.contains(n)).collect()
            } else {
                Vec::new()
            },
            trace_buf: Vec::new(),
        }
    }

    /// Whether node `i` is on the trace list.
    #[inline]
    pub(super) fn is_traced(&self, i: u32) -> bool {
        self.traced[i as usize]
    }

    // -- channel operations --

    /// Whether channel `c` holds a token at its front.
    #[inline]
    pub(super) fn full(&self, c: u32) -> bool {
        let cu = c as usize;
        if cu < self.n_slots {
            self.slot_full[cu / 64] & (1u64 << (cu % 64)) != 0
        } else {
            !self.queues[cu - self.n_slots].is_empty()
        }
    }

    /// Whether channel `c` can accept a token (external queues always can).
    #[inline]
    pub(super) fn space(&self, c: u32) -> bool {
        let cu = c as usize;
        cu >= self.n_slots || self.slot_full[cu / 64] & (1u64 << (cu % 64)) == 0
    }

    /// Tag word of the front token. Caller ensures the channel is full.
    #[inline]
    pub(super) fn front_tag(&self, c: u32) -> u32 {
        let cu = c as usize;
        if cu < self.n_slots {
            self.slot_tag[cu]
        } else {
            self.queues[cu - self.n_slots].front().expect("front of checked channel").0
        }
    }

    /// Payload of the front token. Caller ensures the channel is full.
    #[inline]
    pub(super) fn front_payload(&self, c: u32) -> &Value {
        let cu = c as usize;
        if cu < self.n_slots {
            &self.slot_val[cu]
        } else {
            &self.queues[cu - self.n_slots].front().expect("front of checked channel").1
        }
    }

    /// The front token reassembled into interpreter shape (error messages
    /// only).
    pub(super) fn front_value(&self, c: u32) -> Value {
        assemble(self.front_tag(c), self.front_payload(c).clone())
    }

    /// Removes and returns the front token. Caller ensures the channel is
    /// full.
    #[inline]
    pub(super) fn pop(&mut self, c: u32) -> (u32, Value) {
        let cu = c as usize;
        if cu < self.n_slots {
            self.slot_full[cu / 64] &= !(1u64 << (cu % 64));
            let tag = self.slot_tag[cu];
            self.slot_tag[cu] = NO_TAG;
            (tag, std::mem::replace(&mut self.slot_val[cu], Value::Unit))
        } else {
            self.queues[cu - self.n_slots].pop_front().expect("pop of checked channel")
        }
    }

    /// Appends a token, canonicalising the split representation (an
    /// untagged word whose payload is `Tagged` splits, so the stored pair
    /// always equals `take_tag` of the interpreter's value). Caller
    /// ensures space.
    #[inline]
    pub(super) fn put(&mut self, c: u32, tag: u32, v: Value) {
        let (tag, v) = canon(tag, v);
        let cu = c as usize;
        if cu < self.n_slots {
            self.slot_full[cu / 64] |= 1u64 << (cu % 64);
            self.slot_tag[cu] = tag;
            self.slot_val[cu] = v;
        } else {
            self.queues[cu - self.n_slots].push_back((tag, v));
        }
    }

    // -- per-node flags --

    #[inline]
    pub(super) fn is_accepted(&self, i: u32) -> bool {
        self.accepted[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    pub(super) fn set_accepted(&mut self, i: u32) {
        self.accepted[i as usize / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub(super) fn is_emitted(&self, i: u32) -> bool {
        self.emitted[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    pub(super) fn set_emitted(&mut self, i: u32) {
        self.emitted[i as usize / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub(super) fn is_init_done(&self, i: u32) -> bool {
        self.init_done[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    pub(super) fn set_init_done(&mut self, i: u32) {
        self.init_done[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Ready cycle of node `i`'s internal queue head, if any.
    #[inline]
    fn front_ready(&self, art: &CompiledCircuit, i: usize) -> Option<u64> {
        let pid = art.pipe_of[i];
        if pid == NO_IDX {
            return None;
        }
        self.pipes[pid as usize].front().map(|&(_, _, t)| t)
    }

    /// Earliest future completion among all internal queues.
    fn next_pending(&self, art: &CompiledCircuit) -> Option<u64> {
        let mut min: Option<u64> = None;
        for &(_, pid) in &art.queued {
            if let Some(&(_, _, t)) = self.pipes[pid as usize].front() {
                if t > self.now {
                    min = Some(min.map_or(t, |m: u64| m.min(t)));
                }
            }
        }
        min
    }

    /// Sets bit `i` in `cur`, counting a worklist push if it was clear.
    #[inline]
    fn wake(&mut self, i: usize) {
        let m = 1u64 << (i % 64);
        let w = &mut self.cur[i / 64];
        self.pushes += u64::from(*w & m == 0);
        *w |= m;
    }
}

/// Drives a compiled circuit to quiescence and folds the result into the
/// interpreter's [`SimResult`] shape.
pub(super) fn run(
    art: &CompiledCircuit,
    feeds: &BTreeMap<String, Vec<Value>>,
    memory: Memory,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    let mut rt = Rt::new(art, memory, cfg);
    for (name, vals) in feeds {
        let chan = *art
            .input_chans
            .get(name)
            .ok_or_else(|| SimError::BadGraph(format!("no input named `{name}`")))?;
        for v in vals {
            rt.put(chan, NO_TAG, v.clone());
        }
    }
    graphiti_obs::flight::record("sim.start", || {
        format!("{} nodes, {} channels, scheduler=Compiled", art.nodes.len(), art.n_chans)
    });
    let outcome = drive(art, &mut rt, cfg);
    if let Err(e) = &outcome {
        graphiti_obs::flight::record("sim.error", || format!("cycle {}: {e}", rt.now));
        outcome?;
    }
    Ok(finish(art, rt, cfg))
}

/// The main loop: rounds within a cycle, cycles until quiescence, idle
/// fast-forward between pipeline maturities. Mirrors the event-driven
/// core's control flow exactly; only the worklist representation differs.
fn drive(art: &CompiledCircuit, rt: &mut Rt, cfg: &SimConfig) -> Result<(), SimError> {
    let max_cycles = cfg.max_cycles;
    let n = art.nodes.len();
    let words = art.words;
    // Cycle 0 examines everything, like the interpreter's initial seed.
    for (w, word) in rt.cur.iter_mut().enumerate() {
        let remaining = n - (w * 64).min(n);
        *word = if remaining >= 64 { !0 } else { (1u64 << remaining) - 1 };
    }
    rt.pushes += n as u64;
    let mut timers: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    loop {
        let mut any = false;
        // Rounds: drain `cur` in ascending index order; marks with `j > i`
        // land back in `cur` (still ahead of the scan), the rest in `nxt`.
        loop {
            let mut w = 0;
            while w < words {
                let bits = rt.cur[w];
                if bits == 0 {
                    w += 1;
                    continue;
                }
                let b = bits.trailing_zeros();
                rt.cur[w] = bits & (bits - 1);
                let i = (w * 64) as u32 + b;
                rt.examined += 1;
                if graphiti_obs::failpoint::should_fail("sim.fire.compiled") {
                    return Err(SimError::Injected("sim.fire.compiled".into()));
                }
                let nd = &art.nodes[i as usize];
                if !(nd.fire)(art, rt, i)? {
                    continue;
                }
                any = true;
                rt.firings += 1;
                rt.firings_by_node[i as usize] += 1;
                rt.fired[w] |= 1u64 << b;
                for &(mw, mask) in art.marks(nd.cur_marks) {
                    let word = &mut rt.cur[mw as usize];
                    rt.pushes += u64::from((mask & !*word).count_ones());
                    *word |= mask;
                }
                for &(mw, mask) in art.marks(nd.nxt_marks) {
                    let word = &mut rt.nxt[mw as usize];
                    rt.pushes += u64::from((mask & !*word).count_ones());
                    *word |= mask;
                }
                if let Some(t) = rt.front_ready(art, i as usize) {
                    if t > rt.now {
                        timers.push(Reverse((t, i)));
                    }
                }
            }
            if rt.nxt.iter().all(|&w| w == 0) {
                break;
            }
            std::mem::swap(&mut rt.cur, &mut rt.nxt);
        }
        if any {
            // Scope frame: the post-fixpoint state of the cycle that just
            // ended, before the clock advances and the fired bits reset —
            // the instant the interpreter samples its waveform.
            if let Some(mut sc) = rt.scope.take() {
                sc.capture(art, rt);
                rt.scope = Some(sc);
            }
            rt.last_active = rt.now;
            rt.now += 1;
            // Firing caps reset for the nodes that fired; reseed them.
            for w in 0..words {
                let f = rt.fired[w];
                if f == 0 {
                    continue;
                }
                rt.accepted[w] &= !f;
                rt.emitted[w] &= !f;
                rt.pushes += u64::from((f & !rt.cur[w]).count_ones());
                rt.cur[w] |= f;
                rt.fired[w] = 0;
            }
            // Wake nodes whose pipeline head matures this cycle.
            while let Some(&Reverse((t, j))) = timers.peek() {
                if t > rt.now {
                    break;
                }
                timers.pop();
                rt.wake(j as usize);
            }
        } else {
            match rt.next_pending(art) {
                Some(t) => {
                    rt.now = t;
                    for &(i, pid) in &art.queued {
                        if let Some(&(_, _, r)) = rt.pipes[pid as usize].front() {
                            if r <= rt.now {
                                rt.wake(i as usize);
                            }
                        }
                    }
                    while let Some(&Reverse((t2, _))) = timers.peek() {
                        if t2 > rt.now {
                            break;
                        }
                        timers.pop();
                    }
                }
                None => {
                    // Quiescence with a stalled node (and nothing pending
                    // that could ever drain its output) is a permanent
                    // deadlock — the same test the interpreter applies.
                    if cfg.deadlock_window > 0
                        && (0..art.nodes.len()).any(|i| live_waiting(art, rt, i) == Some(true))
                    {
                        return Err(SimError::Deadlock(Box::new(deadlock_report(art, rt))));
                    }
                    break;
                }
            }
        }
        if let Some(tok) = &cfg.cancel {
            if tok.is_cancelled() {
                return Err(SimError::Cancelled);
            }
        }
        if cfg.deadlock_window > 0
            && rt.now.saturating_sub(rt.last_active) >= cfg.deadlock_window
            && tokens_in_flight(art, rt) > 0
        {
            return Err(SimError::Deadlock(Box::new(deadlock_report(art, rt))));
        }
        if rt.now > max_cycles {
            return Err(SimError::Timeout(max_cycles));
        }
    }
    Ok(())
}

/// The interpreter's `waiting_state` over live runtime state:
/// `Some(true)` for a stalled node (all operands latched, did not fire),
/// `Some(false)` for a starved one, `None` otherwise.
fn live_waiting(art: &CompiledCircuit, rt: &Rt, i: usize) -> Option<bool> {
    if rt.fired[i / 64] & (1u64 << (i % 64)) != 0 {
        return None;
    }
    let ins = art.ports(art.nodes[i].ins);
    if ins.is_empty() {
        return None;
    }
    let ready = ins.iter().filter(|&&c| rt.full(c)).count();
    if ready == ins.len() {
        Some(true)
    } else if ready > 0 {
        Some(false)
    } else {
        None
    }
}

/// Occupancy of node `j`'s internal queue over live state.
#[inline]
fn live_occupancy(art: &CompiledCircuit, rt: &Rt, j: usize) -> usize {
    let pid = art.pipe_of[j];
    if pid == NO_IDX {
        0
    } else {
        rt.pipes[pid as usize].len()
    }
}

/// Tokens resident anywhere but the external outputs, mirroring the
/// leftover count in [`finish`].
fn tokens_in_flight(art: &CompiledCircuit, rt: &Rt) -> u64 {
    let slots: usize = rt.slot_full.iter().map(|w| w.count_ones() as usize).sum();
    let inputs: usize =
        art.input_chans.values().map(|&c| rt.queues[c as usize - art.n_slots].len()).sum();
    let internal: usize = rt.pipes.iter().map(VecDeque::len).sum::<usize>()
        + rt.taggers.iter().map(TaggerState::len).sum::<usize>();
    (slots + inputs + internal) as u64
}

/// `Simulator::walk_downstream` over live runtime state — the same match
/// arms as the scope decoder's replay walker, reading `rt` directly.
fn live_walk_downstream(
    art: &CompiledCircuit,
    rt: &Rt,
    start: usize,
    ss: &mut StallState,
) -> StallCause {
    ss.epoch += 1;
    ss.path.clear();
    ss.visited[start] = ss.epoch;
    let mut cur = start;
    loop {
        let outs = art.ports(art.nodes[cur].outs);
        let Some(&c) = outs.iter().find(|&&c| !rt.space(c)) else {
            return StallCause::BlockedDownstream;
        };
        ss.path.push(c);
        let Some(j) = art.consumer_of[c as usize] else { return StallCause::BlockedDownstream };
        let j = j as usize;
        match art.scope_kind[j] {
            ScopeKind::Sink => return StallCause::BlockedBySink,
            ScopeKind::Store | ScopeKind::Load => return StallCause::MemoryDependency,
            ScopeKind::Lsq => return StallCause::LsqOrdering,
            ScopeKind::Buffer
                if live_occupancy(art, rt, j) >= art.pipe_specs[art.pipe_of[j] as usize].cap =>
            {
                return StallCause::BlockedByFullBuffer
            }
            _ => {}
        }
        if ss.visited[j] == ss.epoch {
            return StallCause::BlockedDownstream;
        }
        ss.visited[j] = ss.epoch;
        cur = j;
    }
}

/// `Simulator::walk_upstream` over live runtime state.
fn live_walk_upstream(
    art: &CompiledCircuit,
    rt: &Rt,
    start: usize,
    ss: &mut StallState,
) -> StallCause {
    ss.epoch += 1;
    ss.path.clear();
    ss.visited[start] = ss.epoch;
    let mut cur = start;
    loop {
        let ins = art.ports(art.nodes[cur].ins);
        let Some(&c) = ins.iter().find(|&&c| !rt.full(c)) else {
            return StallCause::StarvedUpstream;
        };
        ss.path.push(c);
        let Some(j) = art.producer_of[c as usize] else {
            return StallCause::StarvedBySource;
        };
        let j = j as usize;
        match art.scope_kind[j] {
            ScopeKind::Load if live_occupancy(art, rt, j) > 0 => {
                return StallCause::MemoryDependency
            }
            ScopeKind::Lsq if live_occupancy(art, rt, j) > 0 => return StallCause::LsqOrdering,
            ScopeKind::Pipe | ScopeKind::Buffer if live_occupancy(art, rt, j) > 0 => {
                return StallCause::PipelineLatency
            }
            ScopeKind::Tagger if !rt.taggers[art.nodes[j].p0 as usize].is_empty() => {
                return StallCause::PipelineLatency
            }
            _ => {}
        }
        if ss.visited[j] == ss.epoch {
            return StallCause::StarvedUpstream;
        }
        ss.visited[j] = ss.epoch;
        cur = j;
    }
}

/// The stuck-wavefront report over live runtime state. Node and channel
/// indices coincide with the interpreter's by construction, so the report
/// is identical to the one the interpreted schedulers build.
fn deadlock_report(art: &CompiledCircuit, rt: &Rt) -> DeadlockReport {
    let mut ss = StallState::new(art.nodes.len(), art.n_chans);
    let mut wavefront = Vec::new();
    for i in 0..art.nodes.len() {
        let (stalled, cause) = match live_waiting(art, rt, i) {
            Some(true) => (true, live_walk_downstream(art, rt, i, &mut ss)),
            Some(false) => (false, live_walk_upstream(art, rt, i, &mut ss)),
            None => continue,
        };
        wavefront.push(StuckNode {
            node: art.names[i].clone(),
            stalled,
            cause,
            path: ss.path.iter().map(|&c| art.chan_names[c as usize].clone()).collect(),
        });
    }
    DeadlockReport { cycle: rt.now, tokens_in_flight: tokens_in_flight(art, rt), wavefront }
}

/// Folds run state into the interpreter's result shape: reassembles
/// tagged outputs, reconstitutes the memory map, resolves per-node
/// firings to names, decodes the scope log into waveform/stall telemetry,
/// and flushes scheduler metrics.
fn finish(art: &CompiledCircuit, mut rt: Rt, cfg: &SimConfig) -> SimResult {
    // Decode the scope log first: the stall counters it yields join the
    // metric flush below, exactly where the interpreter mints them.
    let (waveform, stalls) = match rt.scope.take() {
        Some(sc) => {
            let t0 = std::time::Instant::now();
            let decoded = super::scope::decode(art, &sc.log, cfg);
            if graphiti_obs::enabled() {
                graphiti_obs::counter("sim.scope.frames").add(sc.frames);
                graphiti_obs::counter("sim.scope.log_words").add(sc.log.len() as u64);
                graphiti_obs::counter("sim.scope.decode_us").add(t0.elapsed().as_micros() as u64);
            }
            decoded
        }
        None => (None, None),
    };
    let trace: Vec<TraceEvent> = std::mem::take(&mut rt.trace_buf)
        .into_iter()
        .map(|(cycle, i, values)| TraceEvent { cycle, node: art.names[i as usize].clone(), values })
        .collect();
    let firings_by_node: BTreeMap<String, u64> = art
        .names
        .iter()
        .zip(&rt.firings_by_node)
        .filter(|&(_, &c)| c > 0)
        .map(|(name, &c)| (name.clone(), c))
        .collect();
    if graphiti_obs::enabled() {
        graphiti_obs::counter("sim.firings").add(rt.firings);
        graphiti_obs::counter("sim.cycles").add(rt.last_active + 1);
        graphiti_obs::counter("sim.sched.examined").add(rt.examined);
        graphiti_obs::counter("sim.sched.worklist_pushes").add(rt.pushes);
        if let Some(rate) = rt.firings.saturating_mul(1000).checked_div(rt.examined) {
            graphiti_obs::gauge("sim.sched.fires_per_1k_examined").set(rate as i64);
        }
        for (name, &count) in art.names.iter().zip(&rt.firings_by_node) {
            if count > 0 {
                graphiti_obs::counter(&format!("sim.fire.{name}")).add(count);
            }
        }
        rt.lsq_stats.flush();
        if cfg.telemetry {
            graphiti_obs::counter("sim.telemetry.runs").inc();
        }
        // The stall counters derive from the decoded report, so the seven
        // per-cause sums equal the totals by construction — the same
        // guarantee the interpreter's shared `waiting_state` gives.
        if let Some(report) = &stalls {
            graphiti_obs::counter("sim.stall_cycles").add(report.stall_cycles);
            graphiti_obs::counter("sim.starved_cycles").add(report.starved_cycles);
            for (cause, count) in report.cause_totals() {
                graphiti_obs::counter(&format!("sim.stall_cause.{cause}")).add(count);
            }
            for (name, stats) in &report.by_node {
                if stats.stalled > 0 {
                    graphiti_obs::counter(&format!("sim.stall_cycles.{name}")).add(stats.stalled);
                }
            }
        }
    }
    graphiti_obs::flight::record("sim.finish", || {
        format!("cycles={} firings={}", rt.last_active + 1, rt.firings)
    });
    let slot_leftover: usize = rt.slot_full.iter().map(|w| w.count_ones() as usize).sum();
    let input_leftover: usize =
        art.input_chans.values().map(|&c| rt.queues[c as usize - art.n_slots].len()).sum();
    let internal_leftover: usize = rt.pipes.iter().map(VecDeque::len).sum::<usize>()
        + rt.taggers.iter().map(TaggerState::len).sum::<usize>();
    let outputs: BTreeMap<String, Vec<Value>> = art
        .output_chans
        .iter()
        .map(|(name, &c)| {
            let q = std::mem::take(&mut rt.queues[c as usize - art.n_slots]);
            (name.clone(), q.into_iter().map(|(t, v)| assemble(t, v)).collect())
        })
        .collect();
    SimResult {
        cycles: rt.last_active + 1,
        outputs,
        memory: rt.mem.into_memory(),
        firings: rt.firings,
        leftover_tokens: slot_leftover + input_leftover + internal_leftover,
        firings_by_node,
        trace,
        waveform,
        stalls,
    }
}
