//! Monomorphic fire functions — one per component kind.
//!
//! Each function is the compiled counterpart of one `step_unit` arm in
//! `sim.rs` and must preserve its transaction semantics *exactly*: the
//! same gating order, the same error conditions raised at the same points,
//! the same channel pops and pushes. The hot loop dispatches through the
//! per-node `fn` pointer baked in at lowering time, so no per-node kind
//! match runs while simulating.
//!
//! Channel tokens live in the split `(u32 tag, payload)` representation
//! (see [`super::canon`]); error messages reassemble the interpreter-shaped
//! value so diagnostics stay byte-identical.

use super::rt::Rt;
use super::{assemble, canon, CompiledCircuit, NO_TAG};
use crate::sim::SimError;
use graphiti_ir::Value;

/// A compiled fire function: attempts every enabled transaction of node
/// `i`, returns whether any fired.
pub(super) type FireFn = fn(&CompiledCircuit, &mut Rt, u32) -> Result<bool, SimError>;

/// The common tag across all of `ins`, or `None` when the transaction is
/// disabled: a missing token, two different tags, or a tagged/untagged
/// mix. Mirrors `fronts_tag` in `sim.rs`; the returned word is [`NO_TAG`]
/// for an all-untagged front set.
fn fronts_tag(rt: &Rt, ins: &[u32]) -> Option<u32> {
    let mut tag = NO_TAG;
    let mut any_untagged = false;
    for &c in ins {
        if !rt.full(c) {
            return None;
        }
        let t = rt.front_tag(c);
        if t == NO_TAG {
            any_untagged = true;
        } else if tag == NO_TAG {
            tag = t;
        } else if tag != t {
            return None;
        }
    }
    if tag != NO_TAG && any_untagged {
        return None;
    }
    Some(tag)
}

pub(super) fn fork(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.full(ins[0]) || !outs.iter().all(|&o| rt.space(o)) {
        return Ok(false);
    }
    let (t, v) = rt.pop(ins[0]);
    for &out in &outs[1..] {
        rt.put(out, t, v.clone());
    }
    rt.put(outs[0], t, v);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn join(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) {
        return Ok(false);
    }
    let Some(tag) = fronts_tag(rt, ins) else { return Ok(false) };
    let (_, a) = rt.pop(ins[0]);
    let (_, b) = rt.pop(ins[1]);
    rt.put(outs[0], tag, Value::pair(a, b));
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn split(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) || !rt.space(outs[1]) || !rt.full(ins[0]) {
        return Ok(false);
    }
    if !matches!(rt.front_payload(ins[0]), Value::Pair(..)) {
        let v = rt.front_value(ins[0]);
        return Err(SimError::Eval(format!("split received non-pair {v}")));
    }
    let (tag, payload) = rt.pop(ins[0]);
    let (a, b) = payload.into_pair().expect("checked pair");
    rt.put(outs[0], tag, a);
    rt.put(outs[1], tag, b);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn mux(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.full(ins[0]) {
        return Ok(false);
    }
    let b = rt.front_payload(ins[0]).as_bool().ok_or_else(|| {
        SimError::Eval(format!("mux condition not boolean: {}", rt.front_value(ins[0])))
    })?;
    let data = if b { 1 } else { 2 };
    if !rt.full(ins[data]) || !rt.space(outs[0]) {
        return Ok(false);
    }
    rt.pop(ins[0]);
    let (t, v) = rt.pop(ins[data]);
    rt.put(outs[0], t, v);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn branch(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.full(ins[1]) || !rt.full(ins[0]) {
        return Ok(false);
    }
    let b = rt.front_payload(ins[0]).as_bool().ok_or_else(|| {
        SimError::Eval(format!("branch condition not boolean: {}", rt.front_value(ins[0])))
    })?;
    let out = if b { 0 } else { 1 };
    if !rt.space(outs[out]) {
        return Ok(false);
    }
    rt.pop(ins[0]);
    let (t, v) = rt.pop(ins[1]);
    rt.put(outs[out], t, v);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn merge(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) {
        return Ok(false);
    }
    // Prefer the second input: in generated loops it is the recirculating
    // path, and draining it avoids clogging.
    for k in [1usize, 0usize] {
        if k < ins.len() && rt.full(ins[k]) {
            let (t, v) = rt.pop(ins[k]);
            rt.put(outs[0], t, v);
            rt.set_accepted(i);
            return Ok(true);
        }
    }
    Ok(false)
}

pub(super) fn init(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) {
        return Ok(false);
    }
    if !rt.is_init_done(i) {
        rt.put(outs[0], NO_TAG, Value::Bool(nd.p0 != 0));
        rt.set_init_done(i);
        rt.set_accepted(i);
        Ok(true)
    } else if rt.full(ins[0]) {
        let (t, v) = rt.pop(ins[0]);
        rt.put(outs[0], t, v);
        rt.set_accepted(i);
        Ok(true)
    } else {
        Ok(false)
    }
}

pub(super) fn sink(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    if rt.is_accepted(i) || !rt.full(ins[0]) {
        return Ok(false);
    }
    rt.pop(ins[0]);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn constant(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) || !rt.full(ins[0]) {
        return Ok(false);
    }
    let tag = rt.front_tag(ins[0]);
    rt.pop(ins[0]);
    rt.put(outs[0], tag, art.consts[nd.p0 as usize].clone());
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn comb(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) {
        return Ok(false);
    }
    let Some(tag) = fronts_tag(rt, ins) else { return Ok(false) };
    if rt.tracing && rt.is_traced(i) {
        let values = ins.iter().map(|&c| rt.front_value(c)).collect();
        rt.trace_buf.push((rt.now, i, values));
    }
    let mut payloads = std::mem::take(&mut rt.scratch);
    payloads.extend(ins.iter().map(|&c| rt.pop(c).1));
    let r = art.ops[nd.p0 as usize].eval(&payloads).map_err(|e| SimError::Eval(e.to_string()))?;
    payloads.clear();
    rt.scratch = payloads;
    rt.put(outs[0], tag, r);
    rt.set_accepted(i);
    Ok(true)
}

/// The shared emit half of every latency-bearing unit (Piped, Pure,
/// Buffer, Load): pop a matured internal-queue head into the output.
#[inline]
fn emit_head(rt: &mut Rt, i: u32, pid: u32, out: u32) -> bool {
    if rt.is_emitted(i) {
        return false;
    }
    let Some(&(_, _, ready)) = rt.pipes[pid as usize].front() else { return false };
    if ready > rt.now || !rt.space(out) {
        return false;
    }
    let (t, v, _) = rt.pipes[pid as usize].pop_front().expect("checked front");
    rt.put(out, t, v);
    rt.set_emitted(i);
    true
}

pub(super) fn piped(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let pid = nd.p1;
    let mut fired = emit_head(rt, i, pid, outs[0]);
    let spec = &art.pipe_specs[pid as usize];
    if !rt.is_accepted(i) && rt.pipes[pid as usize].len() < spec.cap {
        if let Some(tag) = fronts_tag(rt, ins) {
            if rt.tracing && rt.is_traced(i) {
                let values = ins.iter().map(|&c| rt.front_value(c)).collect();
                rt.trace_buf.push((rt.now, i, values));
            }
            let mut payloads = std::mem::take(&mut rt.scratch);
            payloads.extend(ins.iter().map(|&c| rt.pop(c).1));
            let r = art.ops[nd.p0 as usize]
                .eval(&payloads)
                .map_err(|e| SimError::Eval(e.to_string()))?;
            payloads.clear();
            rt.scratch = payloads;
            let (t, r) = canon(tag, r);
            let ready = rt.now + spec.lat;
            rt.pipes[pid as usize].push_back((t, r, ready));
            rt.set_accepted(i);
            fired = true;
        }
    }
    Ok(fired)
}

pub(super) fn pure(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let pid = nd.p1;
    let mut fired = emit_head(rt, i, pid, outs[0]);
    let spec = &art.pipe_specs[pid as usize];
    if !rt.is_accepted(i) && rt.pipes[pid as usize].len() < spec.cap && rt.full(ins[0]) {
        let tag = rt.front_tag(ins[0]);
        // Evaluate before popping, like the interpreter: an evaluation
        // fault leaves the operand on the channel.
        let r = art.pures[nd.p0 as usize]
            .eval_with_mem(rt.front_payload(ins[0]), &|name, addr| rt.mem.read_or_zero(name, addr))
            .map_err(|e| SimError::Eval(e.to_string()))?;
        rt.pop(ins[0]);
        let (t, r) = canon(tag, r);
        let ready = rt.now + spec.lat;
        rt.pipes[pid as usize].push_back((t, r, ready));
        rt.set_accepted(i);
        fired = true;
    }
    Ok(fired)
}

pub(super) fn buffer(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let pid = nd.p0;
    let mut fired = emit_head(rt, i, pid, outs[0]);
    let spec = &art.pipe_specs[pid as usize];
    if !rt.is_accepted(i) && rt.pipes[pid as usize].len() < spec.cap && rt.full(ins[0]) {
        let (t, v) = rt.pop(ins[0]);
        let ready = rt.now + spec.lat;
        rt.pipes[pid as usize].push_back((t, v, ready));
        rt.set_accepted(i);
        fired = true;
    }
    Ok(fired)
}

pub(super) fn tagger(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let tid = nd.p0 as usize;
    let mut fired = false;
    // Accept program-order input (bounded pending window).
    if !rt.is_accepted(i) && rt.taggers[tid].pending.len() < 2 && rt.full(ins[0]) {
        let (t, v) = rt.pop(ins[0]);
        rt.taggers[tid].pending.push_back(assemble(t, v));
        rt.set_accepted(i);
        fired = true;
    }
    // Accept a completion.
    if rt.full(ins[1]) {
        let tag = rt.front_tag(ins[1]);
        if tag == NO_TAG {
            let v = rt.front_value(ins[1]);
            return Err(SimError::Eval(format!("untagged completion {v}")));
        }
        if rt.taggers[tid].order.contains(&tag) && !rt.taggers[tid].done.contains_key(&tag) {
            let (_, payload) = rt.pop(ins[1]);
            rt.taggers[tid].done.insert(tag, payload);
            fired = true;
        }
    }
    // Emit a freshly tagged token into the region.
    if !rt.is_emitted(i) && rt.space(outs[0]) {
        if let (Some(&tag), false) =
            (rt.taggers[tid].free.iter().next(), rt.taggers[tid].pending.is_empty())
        {
            let v = rt.taggers[tid].pending.pop_front().expect("checked pending");
            rt.taggers[tid].free.remove(&tag);
            rt.taggers[tid].order.push_back(tag);
            rt.put(outs[0], tag, v);
            rt.set_emitted(i);
            fired = true;
        }
    }
    // Release the oldest completed token in program order.
    if rt.space(outs[1]) {
        if let Some(&tag) = rt.taggers[tid].order.front() {
            if let Some(v) = rt.taggers[tid].done.remove(&tag) {
                rt.taggers[tid].order.pop_front();
                rt.taggers[tid].free.insert(tag);
                rt.put(outs[1], NO_TAG, v);
                fired = true;
            }
        }
    }
    Ok(fired)
}

pub(super) fn load(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let pid = nd.p1;
    let mut fired = emit_head(rt, i, pid, outs[0]);
    let spec = &art.pipe_specs[pid as usize];
    if !rt.is_accepted(i) && rt.pipes[pid as usize].len() < spec.cap && rt.full(ins[0]) {
        let tag = rt.front_tag(ins[0]);
        let v = rt.mem.read(art, nd.p0, rt.front_payload(ins[0]))?;
        rt.pop(ins[0]);
        let (t, v) = canon(tag, v);
        let ready = rt.now + spec.lat;
        rt.pipes[pid as usize].push_back((t, v, ready));
        rt.set_accepted(i);
        fired = true;
    }
    Ok(fired)
}

pub(super) fn store(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    if rt.is_accepted(i) || !rt.space(outs[0]) || fronts_tag(rt, ins).is_none() {
        return Ok(false);
    }
    let (tag, addr) = rt.pop(ins[0]);
    let (_, data) = rt.pop(ins[1]);
    rt.mem.write(art, nd.p0, &addr, &data)?;
    rt.put(outs[0], tag, Value::Unit);
    rt.set_accepted(i);
    Ok(true)
}

pub(super) fn lsq(art: &CompiledCircuit, rt: &mut Rt, i: u32) -> Result<bool, SimError> {
    let nd = &art.nodes[i as usize];
    let ins = art.ports(nd.ins);
    let outs = art.ports(nd.outs);
    let lid = nd.p0 as usize;
    let pid = nd.p1 as usize;
    let spec = &art.lsqs[lid];
    let ns = spec.n_stores as usize;
    let mut fired = false;
    // Emit one matured load result per cycle (mirrors Load). The parallel
    // site ring says which ldata port the pipe head belongs to.
    if !rt.is_emitted(i) {
        if let Some(&(_, _, ready)) = rt.pipes[pid].front() {
            let site = *rt.lsq_sites[lid].front().expect("site ring tracks pipe") as usize;
            if ready <= rt.now && rt.space(outs[ns + site]) {
                let (t, v, _) = rt.pipes[pid].pop_front().expect("checked front");
                rt.lsq_sites[lid].pop_front();
                rt.put(outs[ns + site], t, v);
                rt.set_emitted(i);
                fired = true;
            }
        }
    }
    // Allocate: one sequence token per cycle opens the next body round;
    // `false` (loop exit) also opens the epilogue round.
    if !rt.is_accepted(i) && rt.full(ins[0]) {
        let more = rt.front_payload(ins[0]).as_bool().ok_or_else(|| {
            SimError::Eval(format!("lsq sequence token not boolean: {}", rt.front_value(ins[0])))
        })?;
        let need = spec.body.len() + if more { 0 } else { spec.epi.len() };
        if rt.lsq_pending[lid].len() + need <= spec.cap {
            rt.pop(ins[0]);
            rt.lsq_pending[lid].extend(spec.body.iter().copied());
            if !more {
                rt.lsq_pending[lid].extend(spec.epi.iter().copied());
            }
            rt.lsq_stats.allocs += 1;
            rt.set_accepted(i);
            fired = true;
        }
    }
    // Commit the head access if it is a store with both operands present:
    // stores leave the queue strictly in program order.
    if let Some(&(true, site)) = rt.lsq_pending[lid].front() {
        let k = site as usize;
        let pair = [ins[1 + 2 * k], ins[2 + 2 * k]];
        if rt.space(outs[k]) && fronts_tag(rt, &pair).is_some() {
            let (tag, addr) = rt.pop(pair[0]);
            let (_, data) = rt.pop(pair[1]);
            rt.mem.write(art, spec.mem, &addr, &data)?;
            rt.put(outs[k], tag, Value::Unit);
            rt.lsq_pending[lid].pop_front();
            rt.lsq_stats.commits += 1;
            fired = true;
        }
    }
    // Issue the oldest load whose address provably misses every older
    // store (memory disambiguation): each store ahead must be the front
    // of its own site — so its address token is the one at the channel
    // head — and differ from the load's address.
    if rt.pipes[pid].len() < art.pipe_specs[pid].cap {
        'issue: for idx in 0..rt.lsq_pending[lid].len() {
            let (is_store, site) = rt.lsq_pending[lid][idx];
            if is_store {
                continue;
            }
            // Only the oldest entry of a load site owns the site's front
            // address token.
            if (0..idx).any(|j| rt.lsq_pending[lid][j] == (false, site)) {
                continue;
            }
            let k = site as usize;
            let laddr = ins[1 + 2 * ns + k];
            if !rt.full(laddr) {
                continue;
            }
            for j in 0..idx {
                let (s, ssite) = rt.lsq_pending[lid][j];
                if !s {
                    continue;
                }
                if (0..j).any(|j2| rt.lsq_pending[lid][j2] == (true, ssite)) {
                    continue 'issue;
                }
                let sa = ins[1 + 2 * ssite as usize];
                if !rt.full(sa) || rt.front_payload(sa) == rt.front_payload(laddr) {
                    continue 'issue;
                }
            }
            let (tag, addr) = rt.pop(laddr);
            let v = rt.mem.read(art, spec.mem, &addr)?;
            let (t, v) = canon(tag, v);
            rt.pipes[pid].push_back((t, v, rt.now + art.pipe_specs[pid].lat));
            rt.lsq_sites[lid].push_back(site);
            rt.lsq_pending[lid].remove(idx);
            rt.lsq_stats.issues += 1;
            fired = true;
            break;
        }
    }
    Ok(fired)
}
