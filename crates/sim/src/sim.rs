//! The cycle-accurate elastic-circuit simulator (the ModelSim substitute).
//!
//! Model:
//!
//! * every wire is a one-slot transparent latch: a token written in cycle
//!   `c` can be consumed in cycle `c` (combinational forwarding), but a full
//!   latch back-pressures its producer;
//! * every component performs at most one transaction per port per cycle
//!   (initiation interval 1), so a token advances through an arbitrarily
//!   long combinational chain within one cycle, but a loop ring progresses
//!   one token per component per cycle;
//! * functional units with non-zero latency are fully pipelined; opaque
//!   Buffers register their tokens (one-cycle latency), transparent Buffers
//!   only add capacity;
//! * computation on tagged tokens is tag-transparent: operands must carry
//!   the same tag, the result re-attaches it;
//! * free-running Store ports commit to memory in arrival order (which is
//!   how the bicg bug of §6.2 manifests: an incorrectly reordered circuit
//!   produces wrong memory contents, not a simulator error), while arrays
//!   behind a store queue commit in program order, serialised by the
//!   queue's sequence stream.
//!
//! Within a cycle, components transact repeatedly until no one can fire;
//! per-cycle firing caps make this terminate. Idle stretches (waiting for a
//! deep FP pipeline) are fast-forwarded.
//!
//! Two schedulers implement that contract (selected by
//! [`SimConfig::scheduler`], see DESIGN.md §"Event-driven scheduler"):
//!
//! * [`Scheduler::EventDriven`] (default) keeps a dirty worklist seeded from
//!   channel activity: after each fire only the consumers of channels that
//!   gained tokens, the producers of channels that drained, and the firing
//!   node itself are re-examined, and latency pipelines re-arm their node
//!   with a timer at the expiry cycle. The worklist is drained in node-index
//!   order, round by round, which makes the firing sequence — and therefore
//!   every observable result — bit-identical to the sweep.
//! * [`Scheduler::ReferenceSweep`] is the original sweep-until-fixpoint loop,
//!   retained as the executable specification for differential testing.

use crate::memory::{mem_read, mem_write, MemError, Memory};
use crate::stall::{StallCause, StallReport, StallState};
use crate::wave::WaveRecorder;
use graphiti_ir::{CompKind, ExprHigh, Op, PureFn, Tag, Value};
use graphiti_sem::{retag, TaggerState};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;

/// Which scheduling core drives the simulation. Both produce identical
/// results (cycles, outputs, memory, per-node firings); the sweep exists as
/// the executable specification the event-driven core is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Dirty-worklist core: only nodes whose channels changed (or whose
    /// pipeline timer expired) are re-examined.
    #[default]
    EventDriven,
    /// Original sweep-until-fixpoint core: every node is examined every
    /// pass of every cycle.
    ReferenceSweep,
    /// Compiled core: the circuit is lowered once into a specialised
    /// simulator (monomorphic fire functions, bit-packed scheduler state,
    /// static firing schedules for in-order regions) and the artifact is
    /// cached per circuit content-hash. Produces the same observable
    /// results as the other two cores. Waveform capture, stall
    /// attribution, and node tracing require [`SimConfig::telemetry`]
    /// (the scope event log, DESIGN.md §3.12); without it they raise
    /// [`SimError::Unsupported`].
    Compiled,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Abort after this many cycles.
    pub max_cycles: u64,
    /// Load port latency in cycles.
    pub load_latency: u64,
    /// Record per-cycle acceptance events for these components (empty: no
    /// tracing). Used to regenerate execution traces like the paper's
    /// Fig. 2d/2e. When `graphiti-obs` collection is enabled, the same
    /// list filters which components emit per-fire Chrome trace events
    /// (empty: all components).
    pub trace_nodes: Vec<String>,
    /// Scheduling core (event-driven by default).
    pub scheduler: Scheduler,
    /// Capture every channel's valid/ready/tag handshake state per cycle
    /// and render it as a VCD document in [`SimResult::waveform`]. When
    /// [`trace_nodes`](SimConfig::trace_nodes) is non-empty, only
    /// channels touching a listed component are captured.
    pub waveform: bool,
    /// Classify every stalled/starved node-cycle by walking its
    /// blockage chain to the root cause and aggregate a
    /// [`StallReport`] in [`SimResult::stalls`].
    pub attribute_stalls: bool,
    /// Enable the compiled backend's scope unit: the run loop records a
    /// compact binary event log that a post-hoc decoder turns into the
    /// same waveforms, stall attribution, and node traces the interpreted
    /// schedulers produce. Off by default so the telemetry-off compiled
    /// fast path keeps its zero-overhead contract; without it, observation
    /// flags under [`Scheduler::Compiled`] raise
    /// [`SimError::Unsupported`]. Ignored by the interpreted schedulers,
    /// which observe directly.
    pub telemetry: bool,
    /// Waveform sampling stride: capture the channel handshake state on
    /// every `N`-th active cycle (`0` and `1` both mean every cycle).
    /// Bounds log/VCD growth on long runs at the cost of skipping the
    /// cycles in between; under [`Scheduler::Compiled`] the scope frames
    /// themselves are sampled, so stall attribution covers the same
    /// sampled cycles (see DESIGN.md §3.12). Both schedulers sample the
    /// same active-cycle indices, so dumps stay byte-identical across
    /// schedulers at any stride.
    pub wave_sample: u64,
    /// Deadlock-detection window in cycles (`0`, the default, disables
    /// detection and preserves the historical behaviour of ending such
    /// runs as quiescence with leftover tokens). When set, a run that
    /// quiesces with a *stalled* node — all operands present, output
    /// permanently blocked, nothing pending that could ever drain it —
    /// returns [`SimError::Deadlock`] with the stuck wavefront; as a
    /// defensive cutoff, so does a run making no progress for this many
    /// consecutive cycles while tokens are in flight (pick a window
    /// larger than the deepest pipeline latency, which fast-forwards
    /// idle stretches anyway). Identical across all three schedulers.
    pub deadlock_window: u64,
    /// Cooperative cancellation token, polled at cycle boundaries. When
    /// it trips, the run returns [`SimError::Cancelled`]. `None` (the
    /// default) costs nothing.
    pub cancel: Option<graphiti_obs::CancelToken>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 50_000_000,
            load_latency: 2,
            trace_nodes: Vec::new(),
            scheduler: Scheduler::default(),
            waveform: false,
            attribute_stalls: false,
            telemetry: false,
            wave_sample: 1,
            deadlock_window: 0,
            cancel: None,
        }
    }
}

impl SimConfig {
    /// The effective waveform sampling stride (`wave_sample` with `0`
    /// normalised to `1`).
    pub fn wave_stride(&self) -> u64 {
        self.wave_sample.max(1)
    }
}

/// Pipeline latency of an operator, in cycles. Zero-latency operators are
/// combinational.
pub fn op_latency(op: Op) -> u64 {
    match op {
        Op::AddF | Op::SubF => 10,
        Op::MulF => 8,
        Op::DivF => 20,
        Op::GeF | Op::LtF => 2,
        Op::IToF => 3,
        Op::MulI => 1,
        Op::Mod | Op::DivI => 8,
        _ => 0,
    }
}

/// Worst-case latency of a symbolic pure function (used only when a Pure
/// component survives to simulation; the pipeline normally expands it back).
pub fn purefn_latency(f: &PureFn, load_latency: u64) -> u64 {
    match f {
        PureFn::Comp(a, b) => purefn_latency(a, load_latency) + purefn_latency(b, load_latency),
        PureFn::Par(a, b) => purefn_latency(a, load_latency).max(purefn_latency(b, load_latency)),
        PureFn::Op(op) => op_latency(*op),
        PureFn::Load(_) => load_latency,
        _ => 0,
    }
}

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A memory access failed.
    Mem(MemError),
    /// An operator faulted (e.g. remainder by zero).
    Eval(String),
    /// The cycle bound was exceeded.
    Timeout(u64),
    /// The graph is not simulatable (validation failure).
    BadGraph(String),
    /// The configuration asks a scheduler for a capability it does not
    /// implement in that mode — e.g. waveforms, stall attribution, or
    /// node tracing under [`Scheduler::Compiled`] without
    /// [`SimConfig::telemetry`]. The message names the scheduler and the
    /// flag that would enable the feature.
    Unsupported(String),
    /// The circuit can never make progress again while tokens are still
    /// in flight (only raised when [`SimConfig::deadlock_window`] is
    /// set). Carries the stuck wavefront, identical across schedulers.
    Deadlock(Box<crate::stall::DeadlockReport>),
    /// The run was cut off by [`SimConfig::cancel`] tripping (deadline
    /// passed or supervisor cancelled).
    Cancelled,
    /// A fault injected by an armed `graphiti_obs::failpoint` schedule.
    Injected(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(e) => write!(f, "memory error: {e}"),
            SimError::Eval(m) => write!(f, "evaluation fault: {m}"),
            SimError::Timeout(c) => write!(f, "simulation exceeded {c} cycles"),
            SimError::BadGraph(m) => write!(f, "graph not simulatable: {m}"),
            SimError::Unsupported(m) => {
                write!(f, "unsupported configuration: {m}")
            }
            SimError::Deadlock(r) => write!(f, "{r}"),
            SimError::Cancelled => write!(f, "simulation cancelled (deadline or supervisor)"),
            SimError::Injected(site) => write!(f, "injected fault: failpoint `{site}`"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

/// The [`SimError::Unsupported`] raised when an observation feature is
/// requested under [`Scheduler::Compiled`] without the flag that enables
/// it there, naming both the scheduler and the fix.
fn compiled_needs_telemetry(feature: &str) -> SimError {
    SimError::Unsupported(format!(
        "{feature} on Scheduler::Compiled requires SimConfig::telemetry \
         (pass --telemetry to graphiti-cli)"
    ))
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total cycles until quiescence.
    pub cycles: u64,
    /// Tokens collected at each external output, in emission order.
    pub outputs: BTreeMap<String, Vec<Value>>,
    /// Final memory contents.
    pub memory: Memory,
    /// Total component firings (activity measure).
    pub firings: u64,
    /// Tokens still resident at quiescence (loop-priming tokens are
    /// expected leftovers).
    pub leftover_tokens: usize,
    /// Firings per component (utilization profile).
    pub firings_by_node: BTreeMap<String, u64>,
    /// Recorded trace events `(cycle, node, consumed values)` for the
    /// components listed in [`SimConfig::trace_nodes`].
    pub trace: Vec<TraceEvent>,
    /// The rendered VCD waveform (present iff [`SimConfig::waveform`]).
    pub waveform: Option<String>,
    /// Stall-cause attribution (present iff
    /// [`SimConfig::attribute_stalls`]).
    pub stalls: Option<StallReport>,
}

/// One recorded acceptance: a traced component consumed these input values
/// in this cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Cycle of the acceptance.
    pub cycle: u64,
    /// Component name.
    pub node: String,
    /// The values consumed (one per input port, in port order).
    pub values: Vec<Value>,
}

type ChanId = usize;

/// A node index narrowed to the `u32` the simulator stores in traces,
/// worklists, and per-event records. [`Simulator::new`] runs the node and
/// channel counts through [`NodeIdx::new`]/[`ChanIdx::new`] once, so a
/// graph too large for the `u32` index space is a
/// [`SimError::BadGraph`] — never a silent `as u32` truncation that would
/// alias two distinct nodes. Hot paths then use `trusted`, which is exact
/// for every index below the validated count (re-checked in debug builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeIdx(u32);

impl NodeIdx {
    fn new(i: usize) -> Result<NodeIdx, SimError> {
        match u32::try_from(i) {
            Ok(n) => Ok(NodeIdx(n)),
            Err(_) => Err(SimError::BadGraph(format!(
                "node index {i} does not fit the simulator's u32 index space"
            ))),
        }
    }

    fn get(self) -> u32 {
        self.0
    }

    /// Narrowing for indices already covered by the count validation in
    /// [`Simulator::new`].
    fn trusted(i: usize) -> u32 {
        debug_assert!(u32::try_from(i).is_ok(), "node index {i} overflows u32");
        i as u32
    }
}

/// Channel-side counterpart of [`NodeIdx`] (stall paths store channel
/// indices as `u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChanIdx(u32);

impl ChanIdx {
    fn new(i: usize) -> Result<ChanIdx, SimError> {
        match u32::try_from(i) {
            Ok(n) => Ok(ChanIdx(n)),
            Err(_) => Err(SimError::BadGraph(format!(
                "channel index {i} does not fit the simulator's u32 index space"
            ))),
        }
    }

    /// Narrowing for indices already covered by the count validation in
    /// [`Simulator::new`].
    fn trusted(i: usize) -> u32 {
        debug_assert!(u32::try_from(i).is_ok(), "channel index {i} overflows u32");
        i as u32
    }
}

#[derive(Debug, Default)]
struct Channel {
    cap: usize,
    q: VecDeque<Value>,
}

impl Channel {
    fn front(&self) -> Option<&Value> {
        self.q.front()
    }

    fn has_space(&self) -> bool {
        self.q.len() < self.cap
    }
}

#[derive(Debug)]
enum Unit {
    Fork,
    Join,
    Split,
    Mux,
    Branch,
    Merge,
    Init {
        initial: bool,
        emitted: bool,
    },
    Sink,
    Constant(Value),
    Comb(Op),
    Piped {
        op: Op,
        lat: u64,
        pipe: VecDeque<(Value, u64)>,
    },
    Pure {
        func: PureFn,
        lat: u64,
        pipe: VecDeque<(Value, u64)>,
    },
    Buffer {
        slots: usize,
        transparent: bool,
        q: VecDeque<(Value, u64)>,
    },
    Tagger {
        state: TaggerState,
    },
    Load {
        mem: String,
        lat: u64,
        pipe: VecDeque<(Value, u64)>,
    },
    Store {
        mem: String,
    },
    Lsq {
        mem: String,
        /// Body-round accesses `(is_store, site)` in program order.
        body: Vec<(bool, u32)>,
        /// Epilogue-round accesses in program order.
        epi: Vec<(bool, u32)>,
        /// Store-site count (laddr/ldata ports start after the store ports).
        n_stores: u32,
        lat: u64,
        /// Pending-entry capacity (see [`lsq_pending_cap`]).
        cap: usize,
        /// Allocated accesses not yet committed/issued, oldest first.
        pending: VecDeque<(bool, u32)>,
        /// Issued loads in flight: `(site, value, ready)`.
        pipe: VecDeque<(u32, Value, u64)>,
        /// `sim.lsq.{allocs,commits,issues}` tallies, flushed at finish.
        stats: LsqStats,
    },
}

/// Store-queue activity tallies, reported as the `sim.lsq.*` counters.
/// Shared with the compiled backend so both finish paths flush the same
/// shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LsqStats {
    /// Sequence tokens consumed (allocation rounds opened).
    pub allocs: u64,
    /// Stores committed to memory in program order.
    pub commits: u64,
    /// Loads issued to memory after disambiguation.
    pub issues: u64,
}

impl LsqStats {
    pub(crate) fn flush(&self) {
        if self.allocs > 0 {
            graphiti_obs::counter("sim.lsq.allocs").add(self.allocs);
        }
        if self.commits > 0 {
            graphiti_obs::counter("sim.lsq.commits").add(self.commits);
        }
        if self.issues > 0 {
            graphiti_obs::counter("sim.lsq.issues").add(self.issues);
        }
    }
}

/// Pending-entry capacity of a store queue: enough for several full
/// allocation rounds so the sequence stream never throttles the loop.
/// Shared with the compiled backend so all schedulers agree.
pub(crate) fn lsq_pending_cap(body: &[bool], epi: &[bool]) -> usize {
    4 * (body.len() + epi.len()).max(1)
}

/// One planned access: `(is_store, site)`, sites numbered globally per
/// class (body first, then epilogue).
pub(crate) type LsqPlan = Vec<(bool, u32)>;

/// Splits a store queue's plans into `(is_store, site)` access lists with
/// globally numbered sites (body first, then epilogue, per class). Shared
/// with the compiled backend.
pub(crate) fn lsq_rounds(body: &[bool], epi: &[bool]) -> (LsqPlan, LsqPlan) {
    let (mut stores, mut loads) = (0u32, 0u32);
    let mut number = |plan: &[bool]| {
        plan.iter()
            .map(|&is_store| {
                let class = if is_store { &mut stores } else { &mut loads };
                let site = *class;
                *class += 1;
                (is_store, site)
            })
            .collect::<Vec<_>>()
    };
    let b = number(body);
    let e = number(epi);
    (b, e)
}

/// Mutable per-run observation state (instrumented runs only).
struct ObsRunState {
    /// Tokens still waiting in the external input channels.
    in_remaining: usize,
    /// Tokens already counted at the external output channels.
    out_seen: usize,
    /// Consumption cycles of in-flight tokens, oldest first.
    consumed_at: VecDeque<u64>,
}

/// Mutable per-run state shared by both scheduling cores.
struct RunState {
    /// Current cycle.
    now: u64,
    /// Total fires so far.
    firings: u64,
    /// Last cycle in which anything fired.
    last_active: u64,
    /// Fires per node, indexed by node id (folded into the
    /// `BTreeMap<String, u64>` API shape once at the end of the run).
    firings_by_node: Vec<u64>,
    /// Which nodes fired at least once in the current cycle.
    fired: Vec<bool>,
    /// The indices set in `fired`, for allocation-free per-cycle resets.
    fired_list: Vec<u32>,
    /// Total node examinations (scheduler-efficiency metric).
    examined: u64,
    /// Node examinations in the current cycle.
    examined_cycle: u64,
    /// Total worklist insertions (scheduler-efficiency metric; zero for
    /// the reference sweep, which has no worklist).
    pushes: u64,
    /// Active cycles completed so far (drives the [`SimConfig::wave_sample`]
    /// stride; idle fast-forwarded cycles do not count).
    active_cycles: u64,
    /// Observation state, present only on instrumented runs.
    obs_run: Option<ObsRunState>,
}

#[derive(Debug)]
struct Node {
    name: String,
    unit: Unit,
    ins: Vec<ChanId>,
    outs: Vec<ChanId>,
    accepted: bool,
    emitted: bool,
}

/// Metric handles held for the duration of one instrumented run. Present
/// only when `graphiti-obs` collection was enabled at construction time,
/// so the uninstrumented hot path pays one `Option` check per fire.
struct SimObs {
    /// Per node: whether its fires emit Chrome trace events (driven by
    /// [`SimConfig::trace_nodes`]; empty list = every node).
    trace_node: Vec<bool>,
    /// Per node: occupancy histogram for components with internal queues
    /// (buffers, pipelines, taggers).
    occupancy: Vec<Option<graphiti_obs::Histogram>>,
    /// Per node: cycles spent back-pressured (all inputs ready, no fire).
    stall_by_node: Vec<graphiti_obs::Counter>,
    /// `sim.stall_cycles`: node-cycles lost to back-pressure.
    stall_total: graphiti_obs::Counter,
    /// `sim.starved_cycles`: node-cycles waiting on missing operands.
    starved_total: graphiti_obs::Counter,
    /// `sim.token_latency_cycles`: source-to-sink latency distribution.
    latency: graphiti_obs::Histogram,
    /// `sim.sched.examined_per_cycle`: node examinations per active cycle
    /// (scheduler efficiency: the sweep examines every node every pass, the
    /// event-driven core only dirty ones).
    sched_examined: graphiti_obs::Histogram,
    /// Per node: `sim.fire.{name}` firing counters, flushed at finish.
    fire_by_node: Vec<graphiti_obs::Counter>,
    /// `sim.stall_cause.{cause}` counters indexed by [`StallCause::index`].
    stall_cause: Vec<graphiti_obs::Counter>,
    /// `sim.firings`.
    firings: graphiti_obs::Counter,
    /// `sim.cycles`.
    cycles: graphiti_obs::Counter,
    /// `sim.sched.examined`.
    examined: graphiti_obs::Counter,
    /// `sim.sched.worklist_pushes`.
    worklist_pushes: graphiti_obs::Counter,
    /// `sim.sched.fires_per_1k_examined`.
    fire_rate: graphiti_obs::Gauge,
}

impl SimObs {
    fn new(nodes: &[Node], cfg: &SimConfig) -> SimObs {
        let trace_node = nodes
            .iter()
            .map(|n| cfg.trace_nodes.is_empty() || cfg.trace_nodes.contains(&n.name))
            .collect();
        let occupancy = nodes
            .iter()
            .map(|n| {
                let queued = matches!(
                    n.unit,
                    Unit::Buffer { .. }
                        | Unit::Piped { .. }
                        | Unit::Pure { .. }
                        | Unit::Load { .. }
                        | Unit::Tagger { .. }
                        | Unit::Lsq { .. }
                );
                queued.then(|| graphiti_obs::histogram(&format!("sim.buf_occupancy.{}", n.name)))
            })
            .collect();
        let stall_by_node = nodes
            .iter()
            .map(|n| graphiti_obs::counter(&format!("sim.stall_cycles.{}", n.name)))
            .collect();
        // Finish-path handles are resolved here too: one registry pass per
        // run instead of one string format + lock per metric at finish.
        let fire_by_node =
            nodes.iter().map(|n| graphiti_obs::counter(&format!("sim.fire.{}", n.name))).collect();
        let stall_cause = crate::STALL_CAUSES
            .iter()
            .map(|c| graphiti_obs::counter(&format!("sim.stall_cause.{c}")))
            .collect();
        SimObs {
            trace_node,
            occupancy,
            stall_by_node,
            stall_total: graphiti_obs::counter("sim.stall_cycles"),
            starved_total: graphiti_obs::counter("sim.starved_cycles"),
            latency: graphiti_obs::histogram("sim.token_latency_cycles"),
            sched_examined: graphiti_obs::histogram("sim.sched.examined_per_cycle"),
            fire_by_node,
            stall_cause,
            firings: graphiti_obs::counter("sim.firings"),
            cycles: graphiti_obs::counter("sim.cycles"),
            examined: graphiti_obs::counter("sim.sched.examined"),
            worklist_pushes: graphiti_obs::counter("sim.sched.worklist_pushes"),
            fire_rate: graphiti_obs::gauge("sim.sched.fires_per_1k_examined"),
        }
    }
}

/// A netlist instantiated for simulation.
pub struct Simulator {
    nodes: Vec<Node>,
    chans: Vec<Channel>,
    input_chans: BTreeMap<String, ChanId>,
    output_chans: BTreeMap<String, ChanId>,
    memory: Memory,
    cfg: SimConfig,
    /// Raw trace events `(cycle, node index, consumed values)`; node names
    /// are resolved once at export instead of cloned per fire.
    trace: Vec<(u64, u32, Vec<Value>)>,
    /// Per node: does [`SimConfig::trace_nodes`] select it (precomputed so
    /// the fire path avoids a linear scan).
    traced: Vec<bool>,
    /// Per channel: the node that reads it, if any (fanout table for the
    /// event-driven scheduler; channels are single-consumer).
    consumer_of: Vec<Option<u32>>,
    /// Per channel: the node that writes it, if any (single-producer).
    producer_of: Vec<Option<u32>>,
    /// Reusable operand buffer for multi-input fires (Comb/Piped), so the
    /// hot path performs no per-fire allocation after warm-up.
    scratch: Vec<Value>,
    obs: Option<SimObs>,
    /// Per channel: a human-readable name (`from.port-to.port`, `in.x`,
    /// `out.y`). Built only when waveforms or attribution need it.
    chan_names: Vec<String>,
    /// Waveform recorder, present iff [`SimConfig::waveform`].
    wave: Option<WaveRecorder>,
    /// Stall-attribution state, present iff
    /// [`SimConfig::attribute_stalls`].
    stall: Option<StallState>,
    /// The compiled artifact, present iff the scheduler is
    /// [`Scheduler::Compiled`]; [`Simulator::run`] delegates to it and the
    /// interpreter machinery above stays empty.
    compiled: Option<std::sync::Arc<crate::compile::CompiledCircuit>>,
}

/// Why a node lost a cycle (shared vocabulary of the metrics layer and
/// the attribution engine, so their totals agree by construction).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// All operands present, no fire: back-pressured by a full output.
    Stalled,
    /// Some operands present, some missing.
    Starved,
}

/// The common tag across the front tokens of `ins`, by reference.
///
/// `None` means the transition is disabled: some input has no token, or the
/// operands mix tags (two different tags, or tagged alongside untagged) —
/// the same contract as [`graphiti_sem::untag_all`], without cloning any
/// payload.
fn fronts_tag(chans: &[Channel], ins: &[ChanId]) -> Option<Option<Tag>> {
    let mut tag: Option<Tag> = None;
    let mut any_untagged = false;
    for &c in ins {
        match chans[c].front()?.untag().0 {
            Some(t) => match tag {
                None => tag = Some(t),
                Some(t0) if t0 == t => {}
                Some(_) => return None,
            },
            None => any_untagged = true,
        }
    }
    if tag.is_some() && any_untagged {
        return None;
    }
    Some(tag)
}

/// Detaches a value's tag without cloning the payload.
fn take_tag(v: Value) -> (Option<Tag>, Value) {
    match v {
        Value::Tagged(t, inner) => (Some(t), *inner),
        v => (None, v),
    }
}

/// Inputs to [`Simulator::step_unit`] beyond the unit itself: the node's
/// per-cycle acceptance/emission caps, and whether consumed operand values
/// must be captured for the trace/observability layer.
#[derive(Clone, Copy)]
struct StepFlags {
    accepted: bool,
    emitted: bool,
    want_trace: bool,
}

/// What a [`Simulator::step_unit`] call produced: `(fired, accepted,
/// emitted, traced input values)`.
type StepOutcome = (bool, bool, bool, Option<Vec<Value>>);

impl Simulator {
    /// Builds a simulator for a circuit over the given memory.
    ///
    /// # Errors
    ///
    /// Fails if the graph is incomplete.
    pub fn new(g: &ExprHigh, memory: Memory, cfg: SimConfig) -> Result<Simulator, SimError> {
        if cfg.scheduler == Scheduler::Compiled {
            if !cfg.telemetry {
                if cfg.waveform {
                    return Err(compiled_needs_telemetry("waveform capture"));
                }
                if cfg.attribute_stalls {
                    return Err(compiled_needs_telemetry("stall attribution"));
                }
                if !cfg.trace_nodes.is_empty() {
                    return Err(compiled_needs_telemetry("node tracing"));
                }
            }
            let art = crate::compile::get_or_compile(g, &cfg)?;
            return Ok(Simulator {
                nodes: Vec::new(),
                chans: Vec::new(),
                input_chans: BTreeMap::new(),
                output_chans: BTreeMap::new(),
                memory,
                cfg,
                trace: Vec::new(),
                traced: Vec::new(),
                consumer_of: Vec::new(),
                producer_of: Vec::new(),
                scratch: Vec::new(),
                obs: None,
                chan_names: Vec::new(),
                wave: None,
                stall: None,
                compiled: Some(art),
            });
        }
        g.validate().map_err(|e| SimError::BadGraph(e.to_string()))?;
        // Channel names feed the waveform signal list, the stall report,
        // and the deadlock wavefront; skipped entirely on plain runs.
        let want_names = cfg.waveform || cfg.attribute_stalls || cfg.deadlock_window > 0;
        let mut chan_names: Vec<String> = Vec::new();
        let mut chans: Vec<Channel> = Vec::new();
        let mut chan_of_out: BTreeMap<graphiti_ir::Endpoint, ChanId> = BTreeMap::new();
        let mut chan_of_in: BTreeMap<graphiti_ir::Endpoint, ChanId> = BTreeMap::new();
        for (from, to) in g.edges() {
            let id = chans.len();
            chans.push(Channel { cap: 1, q: VecDeque::new() });
            if want_names {
                chan_names.push(format!("{}.{}-{}.{}", from.node, from.port, to.node, to.port));
            }
            chan_of_out.insert(from.clone(), id);
            chan_of_in.insert(to.clone(), id);
        }
        let mut input_chans = BTreeMap::new();
        for (name, target) in g.inputs() {
            let id = chans.len();
            chans.push(Channel { cap: usize::MAX, q: VecDeque::new() });
            if want_names {
                chan_names.push(format!("in.{name}"));
            }
            chan_of_in.insert(target.clone(), id);
            input_chans.insert(name.clone(), id);
        }
        let mut output_chans = BTreeMap::new();
        for (name, source) in g.outputs() {
            let id = chans.len();
            chans.push(Channel { cap: usize::MAX, q: VecDeque::new() });
            if want_names {
                chan_names.push(format!("out.{name}"));
            }
            chan_of_out.insert(source.clone(), id);
            output_chans.insert(name.clone(), id);
        }
        let mut nodes = Vec::new();
        for (name, kind) in g.nodes() {
            let (ins_p, outs_p) = kind.interface();
            let ins = ins_p
                .iter()
                .map(|p| chan_of_in[&graphiti_ir::ep(name.clone(), p.clone())])
                .collect();
            let outs = outs_p
                .iter()
                .map(|p| chan_of_out[&graphiti_ir::ep(name.clone(), p.clone())])
                .collect();
            let unit = match kind {
                CompKind::Fork { .. } => Unit::Fork,
                CompKind::Join => Unit::Join,
                CompKind::Split => Unit::Split,
                CompKind::Mux => Unit::Mux,
                CompKind::Branch => Unit::Branch,
                CompKind::Merge => Unit::Merge,
                CompKind::Init { initial } => Unit::Init { initial: *initial, emitted: false },
                CompKind::Sink => Unit::Sink,
                CompKind::Constant { value } => Unit::Constant(value.clone()),
                CompKind::Operator { op } => {
                    let lat = op_latency(*op);
                    if lat == 0 {
                        Unit::Comb(*op)
                    } else {
                        Unit::Piped { op: *op, lat, pipe: VecDeque::new() }
                    }
                }
                CompKind::Pure { func } => Unit::Pure {
                    lat: purefn_latency(func, cfg.load_latency),
                    func: func.clone(),
                    pipe: VecDeque::new(),
                },
                CompKind::Buffer { slots, transparent } => Unit::Buffer {
                    slots: (*slots).max(1),
                    transparent: *transparent,
                    q: VecDeque::new(),
                },
                CompKind::TaggerUntagger { tags } => {
                    Unit::Tagger { state: TaggerState::new(*tags) }
                }
                CompKind::Load { mem } => {
                    Unit::Load { mem: mem.clone(), lat: cfg.load_latency, pipe: VecDeque::new() }
                }
                CompKind::Store { mem } => Unit::Store { mem: mem.clone() },
                CompKind::StoreQueue { mem, body_plan, epi_plan } => {
                    let (body, epi) = lsq_rounds(body_plan, epi_plan);
                    let (n_stores, _) = graphiti_ir::lsq_site_counts(body_plan, epi_plan);
                    Unit::Lsq {
                        mem: mem.clone(),
                        body,
                        epi,
                        n_stores: n_stores as u32,
                        lat: cfg.load_latency,
                        cap: lsq_pending_cap(body_plan, epi_plan),
                        pending: VecDeque::new(),
                        pipe: VecDeque::new(),
                        stats: LsqStats::default(),
                    }
                }
            };
            nodes.push(Node {
                name: name.clone(),
                unit,
                ins,
                outs,
                accepted: false,
                emitted: false,
            });
        }
        // Validate both counts once; every later usize→u32 narrowing of an
        // in-range index (`NodeIdx::trusted` / `ChanIdx::trusted`) is then
        // exact.
        NodeIdx::new(nodes.len())?;
        ChanIdx::new(chans.len())?;
        let mut consumer_of: Vec<Option<u32>> = vec![None; chans.len()];
        let mut producer_of: Vec<Option<u32>> = vec![None; chans.len()];
        for (i, n) in nodes.iter().enumerate() {
            let idx = NodeIdx::new(i)?;
            for &c in &n.ins {
                consumer_of[c] = Some(idx.get());
            }
            for &c in &n.outs {
                producer_of[c] = Some(idx.get());
            }
        }
        let traced = nodes.iter().map(|n| cfg.trace_nodes.contains(&n.name)).collect();
        let obs = graphiti_obs::enabled().then(|| SimObs::new(&nodes, &cfg));
        let wave = cfg.waveform.then(|| {
            let selected = (0..chans.len())
                .filter(|&c| {
                    cfg.trace_nodes.is_empty()
                        || [producer_of[c], consumer_of[c]]
                            .iter()
                            .flatten()
                            .any(|&j| cfg.trace_nodes.contains(&nodes[j as usize].name))
                })
                .map(|c| (c, chan_names[c].clone()))
                .collect();
            WaveRecorder::new(selected)
        });
        let stall = cfg.attribute_stalls.then(|| StallState::new(nodes.len(), chans.len()));
        Ok(Simulator {
            nodes,
            chans,
            input_chans,
            output_chans,
            memory,
            cfg,
            trace: Vec::new(),
            traced,
            consumer_of,
            producer_of,
            scratch: Vec::new(),
            obs,
            chan_names,
            wave,
            stall,
            compiled: None,
        })
    }

    /// Records an acceptance event if the node is traced.
    fn record(&mut self, i: usize, now: u64, values: Vec<Value>) {
        if self.traced[i] {
            self.trace.push((now, NodeIdx::trusted(i), values));
        }
    }

    fn push(&mut self, chan: ChanId, v: Value) {
        self.chans[chan].q.push_back(v);
    }

    fn pop(&mut self, chan: ChanId) -> Value {
        self.chans[chan].q.pop_front().expect("pop on checked channel")
    }

    /// Attempts all enabled transactions of node `i`; returns whether any
    /// fired.
    fn step(&mut self, i: usize, now: u64) -> Result<bool, SimError> {
        if graphiti_obs::failpoint::should_fail("sim.fire") {
            return Err(SimError::Injected("sim.fire".into()));
        }
        // Split borrows: temporarily take the unit and port lists out so
        // the transaction body can borrow channels and memory freely —
        // without cloning `ins`/`outs` on every candidate fire.
        let ins = std::mem::take(&mut self.nodes[i].ins);
        let outs = std::mem::take(&mut self.nodes[i].outs);
        let mut unit = std::mem::replace(&mut self.nodes[i].unit, Unit::Sink);
        let accepted = self.nodes[i].accepted;
        let emitted = self.nodes[i].emitted;
        // Consumed operand values are only materialised when someone will
        // look at them — the trace or the observability layer.
        let want_trace = self.traced[i] || self.obs.as_ref().is_some_and(|o| o.trace_node[i]);
        let flags = StepFlags { accepted, emitted, want_trace };
        let res = self.step_unit(&mut unit, &ins, &outs, now, flags);
        let n = &mut self.nodes[i];
        n.unit = unit;
        n.ins = ins;
        n.outs = outs;
        let (fired, accepted, emitted, traced_values) = res?;
        let n = &mut self.nodes[i];
        n.accepted = accepted;
        n.emitted = emitted;
        if fired {
            if let Some(obs) = &self.obs {
                if obs.trace_node[i] {
                    let args = match &traced_values {
                        Some(vs) => {
                            let rendered =
                                vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
                            vec![("values".to_string(), rendered)]
                        }
                        None => Vec::new(),
                    };
                    // Simulated-time track: 1 cycle = 1 µs, one lane per node.
                    graphiti_obs::emit_complete(
                        graphiti_obs::PID_SIM,
                        NodeIdx::trusted(i),
                        &self.nodes[i].name,
                        now,
                        1,
                        args,
                    );
                }
            }
        }
        if let Some(values) = traced_values {
            self.record(i, now, values);
        }
        Ok(fired)
    }

    /// The transaction body of [`step`](Simulator::step): attempts every
    /// enabled sub-transaction of `unit`, returning `(fired, accepted,
    /// emitted, traced input values)`. Operand values are only cloned out
    /// when `want_trace` is set; otherwise every arm moves tokens without
    /// allocating.
    fn step_unit(
        &mut self,
        unit: &mut Unit,
        ins: &[ChanId],
        outs: &[ChanId],
        now: u64,
        flags: StepFlags,
    ) -> Result<StepOutcome, SimError> {
        let StepFlags { mut accepted, mut emitted, want_trace } = flags;
        let mut fired = false;

        macro_rules! space {
            ($k:expr) => {
                self.chans[outs[$k]].has_space()
            };
        }

        let mut traced_values: Option<Vec<Value>> = None;

        match unit {
            Unit::Fork => {
                if !accepted
                    && self.chans[ins[0]].front().is_some()
                    && (0..outs.len()).all(|k| space!(k))
                {
                    let v = self.pop(ins[0]);
                    for &out in &outs[1..] {
                        self.push(out, v.clone());
                    }
                    self.push(outs[0], v);
                    accepted = true;
                    fired = true;
                }
            }
            Unit::Join => {
                if !accepted && space!(0) {
                    if let Some(tag) = fronts_tag(&self.chans, ins) {
                        let (_, a) = take_tag(self.pop(ins[0]));
                        let (_, b) = take_tag(self.pop(ins[1]));
                        self.push(outs[0], retag(tag, Value::pair(a, b)));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Split => {
                if !accepted && space!(0) && space!(1) {
                    if let Some(v) = self.chans[ins[0]].front() {
                        if !matches!(v.untag().1, Value::Pair(..)) {
                            return Err(SimError::Eval(format!("split received non-pair {v}")));
                        }
                        let (tag, payload) = take_tag(self.pop(ins[0]));
                        let (a, b) = payload.into_pair().expect("checked pair");
                        self.push(outs[0], retag(tag, a));
                        self.push(outs[1], retag(tag, b));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Mux => {
                if !accepted {
                    if let Some(c) = self.chans[ins[0]].front() {
                        let b = c.untag().1.as_bool().ok_or_else(|| {
                            SimError::Eval(format!("mux condition not boolean: {c}"))
                        })?;
                        let data = if b { 1 } else { 2 };
                        if self.chans[ins[data]].front().is_some() && space!(0) {
                            self.pop(ins[0]);
                            let v = self.pop(ins[data]);
                            self.push(outs[0], v);
                            accepted = true;
                            fired = true;
                        }
                    }
                }
            }
            Unit::Branch => {
                if !accepted && self.chans[ins[1]].front().is_some() {
                    if let Some(c) = self.chans[ins[0]].front() {
                        let b = c.untag().1.as_bool().ok_or_else(|| {
                            SimError::Eval(format!("branch condition not boolean: {c}"))
                        })?;
                        let out = if b { 0 } else { 1 };
                        if space!(out) {
                            self.pop(ins[0]);
                            let v = self.pop(ins[1]);
                            self.push(outs[out], v);
                            accepted = true;
                            fired = true;
                        }
                    }
                }
            }
            Unit::Merge => {
                if !accepted && space!(0) {
                    // Prefer the second input: in generated loops it is the
                    // recirculating path, and draining it avoids clogging.
                    for k in [1usize, 0usize] {
                        if k < ins.len() && self.chans[ins[k]].front().is_some() {
                            let v = self.pop(ins[k]);
                            self.push(outs[0], v);
                            accepted = true;
                            fired = true;
                            break;
                        }
                    }
                }
            }
            Unit::Init { initial, emitted: init_done } => {
                if !accepted && space!(0) {
                    if !*init_done {
                        self.push(outs[0], Value::Bool(*initial));
                        *init_done = true;
                        accepted = true;
                        fired = true;
                    } else if self.chans[ins[0]].front().is_some() {
                        let v = self.pop(ins[0]);
                        self.push(outs[0], v);
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Sink => {
                if !accepted && self.chans[ins[0]].front().is_some() {
                    self.pop(ins[0]);
                    accepted = true;
                    fired = true;
                }
            }
            Unit::Constant(v) => {
                if !accepted && space!(0) {
                    if let Some(c) = self.chans[ins[0]].front() {
                        let tag = c.untag().0;
                        self.pop(ins[0]);
                        self.push(outs[0], retag(tag, v.clone()));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Comb(op) => {
                if !accepted && space!(0) {
                    if let Some(tag) = fronts_tag(&self.chans, ins) {
                        if want_trace {
                            traced_values = Some(
                                ins.iter()
                                    .map(|&c| self.chans[c].front().expect("checked front").clone())
                                    .collect(),
                            );
                        }
                        let mut payloads = std::mem::take(&mut self.scratch);
                        payloads.extend(ins.iter().map(|&c| take_tag(self.pop(c)).1));
                        let r = op.eval(&payloads).map_err(|e| SimError::Eval(e.to_string()))?;
                        payloads.clear();
                        self.scratch = payloads;
                        self.push(outs[0], retag(tag, r));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Piped { op, lat, pipe } => {
                if !emitted {
                    if let Some((_, ready)) = pipe.front() {
                        if *ready <= now && space!(0) {
                            let (v, _) = pipe.pop_front().expect("checked front");
                            self.push(outs[0], v);
                            emitted = true;
                            fired = true;
                        }
                    }
                }
                if !accepted && pipe.len() < (*lat as usize + 1) {
                    if let Some(tag) = fronts_tag(&self.chans, ins) {
                        if want_trace {
                            traced_values = Some(
                                ins.iter()
                                    .map(|&c| self.chans[c].front().expect("checked front").clone())
                                    .collect(),
                            );
                        }
                        let mut payloads = std::mem::take(&mut self.scratch);
                        payloads.extend(ins.iter().map(|&c| take_tag(self.pop(c)).1));
                        let r = op.eval(&payloads).map_err(|e| SimError::Eval(e.to_string()))?;
                        payloads.clear();
                        self.scratch = payloads;
                        pipe.push_back((retag(tag, r), now + *lat));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Pure { func, lat, pipe } => {
                if !emitted {
                    if let Some((_, ready)) = pipe.front() {
                        if *ready <= now && space!(0) {
                            let (v, _) = pipe.pop_front().expect("checked front");
                            self.push(outs[0], v);
                            emitted = true;
                            fired = true;
                        }
                    }
                }
                if !accepted && pipe.len() < (*lat as usize + 1) {
                    if let Some(v) = self.chans[ins[0]].front() {
                        let (tag, payload) = v.untag();
                        let mem = &self.memory;
                        let r = func
                            .eval_with_mem(payload, &|name, addr| {
                                mem_read(mem, name, &Value::Int(addr)).unwrap_or(Value::Int(0))
                            })
                            .map_err(|e| SimError::Eval(e.to_string()))?;
                        let r = retag(tag, r);
                        self.pop(ins[0]);
                        pipe.push_back((r, now + *lat));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Buffer { slots, transparent, q } => {
                if !emitted {
                    if let Some((_, ready)) = q.front() {
                        if *ready <= now && space!(0) {
                            let (v, _) = q.pop_front().expect("checked front");
                            self.push(outs[0], v);
                            emitted = true;
                            fired = true;
                        }
                    }
                }
                if !accepted && q.len() < *slots && self.chans[ins[0]].front().is_some() {
                    let v = self.pop(ins[0]);
                    let ready = if *transparent { now } else { now + 1 };
                    q.push_back((v, ready));
                    accepted = true;
                    fired = true;
                }
            }
            Unit::Tagger { state } => {
                // Four sub-transactions share the accepted/emitted flags
                // pairwise: (accept in | accept retag) and (emit tagged |
                // emit out) could each fire once per cycle; model them with
                // independent limits via small per-call loops.
                // Accept program-order input (bounded pending window).
                if !accepted && state.pending.len() < 2 && self.chans[ins[0]].front().is_some() {
                    let v = self.pop(ins[0]);
                    state.pending.push_back(v);
                    accepted = true;
                    fired = true;
                }
                // Accept a completion.
                if let Some(v) = self.chans[ins[1]].front() {
                    match v.untag().0 {
                        Some(tag) => {
                            if state.order.contains(&tag) && !state.done.contains_key(&tag) {
                                let (_, payload) = take_tag(self.pop(ins[1]));
                                state.done.insert(tag, payload);
                                fired = true;
                            }
                        }
                        None => return Err(SimError::Eval(format!("untagged completion {v}"))),
                    }
                }
                // Emit a freshly tagged token into the region.
                if !emitted && self.chans[outs[0]].has_space() {
                    if let (Some(&tag), true) =
                        (state.free.iter().next(), !state.pending.is_empty())
                    {
                        let v = state.pending.pop_front().expect("checked pending");
                        state.free.remove(&tag);
                        state.order.push_back(tag);
                        self.push(outs[0], Value::tagged(tag, v));
                        emitted = true;
                        fired = true;
                    }
                }
                // Release the oldest completed token in program order.
                if self.chans[outs[1]].has_space() {
                    if let Some(&tag) = state.order.front() {
                        if let Some(v) = state.done.remove(&tag) {
                            state.order.pop_front();
                            state.free.insert(tag);
                            self.push(outs[1], v);
                            fired = true;
                        }
                    }
                }
            }
            Unit::Load { mem, lat, pipe } => {
                if !emitted {
                    if let Some((_, ready)) = pipe.front() {
                        if *ready <= now && space!(0) {
                            let (v, _) = pipe.pop_front().expect("checked front");
                            self.push(outs[0], v);
                            emitted = true;
                            fired = true;
                        }
                    }
                }
                if !accepted && pipe.len() < (*lat as usize + 1) {
                    if let Some(addr) = self.chans[ins[0]].front() {
                        let tag = addr.untag().0;
                        let v = mem_read(&self.memory, mem, addr)?;
                        self.pop(ins[0]);
                        pipe.push_back((retag(tag, v), now + *lat));
                        accepted = true;
                        fired = true;
                    }
                }
            }
            Unit::Store { mem } => {
                if !accepted && space!(0) && fronts_tag(&self.chans, ins).is_some() {
                    let addr = self.pop(ins[0]);
                    let data = self.pop(ins[1]);
                    mem_write(&mut self.memory, mem, &addr, &data)?;
                    let tag = addr.untag().0;
                    self.push(outs[0], retag(tag, Value::Unit));
                    accepted = true;
                    fired = true;
                }
            }
            Unit::Lsq { mem, body, epi, n_stores, lat, cap, pending, pipe, stats } => {
                // Port layout: ins = [seq, (saddr, sdata) per store site,
                // laddr per load site]; outs = [sdone per store site, ldata
                // per load site].
                let ns = *n_stores as usize;
                // Emit one matured load result per cycle (mirrors Load).
                if !emitted {
                    if let Some((site, _, ready)) = pipe.front() {
                        let (site, ready) = (*site, *ready);
                        if ready <= now && space!(ns + site as usize) {
                            let (_, v, _) = pipe.pop_front().expect("checked front");
                            self.push(outs[ns + site as usize], v);
                            emitted = true;
                            fired = true;
                        }
                    }
                }
                // Allocate: one sequence token per cycle opens the next
                // body round; `false` (loop exit) also opens the epilogue
                // round. Program order is exactly the seq-token order.
                if !accepted {
                    if let Some(v) = self.chans[ins[0]].front() {
                        let more = v.untag().1.as_bool().ok_or_else(|| {
                            SimError::Eval(format!("lsq sequence token not boolean: {v}"))
                        })?;
                        let need = body.len() + if more { 0 } else { epi.len() };
                        if pending.len() + need <= *cap {
                            self.pop(ins[0]);
                            pending.extend(body.iter().copied());
                            if !more {
                                pending.extend(epi.iter().copied());
                            }
                            stats.allocs += 1;
                            accepted = true;
                            fired = true;
                        }
                    }
                }
                // Commit the head access if it is a store with both
                // operands present: stores leave the queue strictly in
                // program order.
                if let Some(&(true, site)) = pending.front() {
                    let k = site as usize;
                    let pair = [ins[1 + 2 * k], ins[2 + 2 * k]];
                    if space!(k) && fronts_tag(&self.chans, &pair).is_some() {
                        let addr = self.pop(pair[0]);
                        let data = self.pop(pair[1]);
                        mem_write(&mut self.memory, mem, &addr, &data)?;
                        let tag = addr.untag().0;
                        self.push(outs[k], retag(tag, Value::Unit));
                        pending.pop_front();
                        stats.commits += 1;
                        fired = true;
                    }
                }
                // Issue the oldest load whose address provably misses every
                // older store (memory disambiguation): each store ahead
                // must be the front of its own site — so its address token
                // is the one at the channel head — and differ from the
                // load's address. Issued loads leave the queue; stores
                // behind them can then commit without breaking the
                // load's program-order value (it already read memory).
                if pipe.len() < (*lat as usize + 1) {
                    'issue: for idx in 0..pending.len() {
                        let (is_store, site) = pending[idx];
                        if is_store {
                            continue;
                        }
                        // Only the oldest entry of a load site owns the
                        // site's front address token.
                        if (0..idx).any(|j| pending[j] == (false, site)) {
                            continue;
                        }
                        let k = site as usize;
                        let laddr = ins[1 + 2 * ns + k];
                        let Some(af) = self.chans[laddr].front() else { continue };
                        let la = af.untag().1.clone();
                        for j in 0..idx {
                            let (s, ssite) = pending[j];
                            if !s {
                                continue;
                            }
                            if (0..j).any(|j2| pending[j2] == (true, ssite)) {
                                continue 'issue;
                            }
                            match self.chans[ins[1 + 2 * ssite as usize]].front() {
                                Some(sa) if *sa.untag().1 != la => {}
                                _ => continue 'issue,
                            }
                        }
                        let addr = self.pop(laddr);
                        let tag = addr.untag().0;
                        let v = mem_read(&self.memory, mem, &addr)?;
                        pipe.push_back((site, retag(tag, v), now + *lat));
                        pending.remove(idx);
                        stats.issues += 1;
                        fired = true;
                        break;
                    }
                }
            }
        }

        Ok((fired, accepted, emitted, traced_values))
    }

    /// Whether node `i` lost the cycle that just ended, and how. This
    /// single predicate drives both the `sim.stall_cycles` /
    /// `sim.starved_cycles` counters and the attribution engine, so the
    /// per-cause sums match the totals by construction.
    fn waiting_state(&self, i: usize, fired: &[bool]) -> Option<Waiting> {
        let n = &self.nodes[i];
        if fired[i] || n.ins.is_empty() {
            return None;
        }
        let ready = n.ins.iter().filter(|&&c| self.chans[c].front().is_some()).count();
        if ready == n.ins.len() {
            Some(Waiting::Stalled)
        } else if ready > 0 {
            Some(Waiting::Starved)
        } else {
            None
        }
    }

    /// One end-of-cycle observation pass (instrumented runs only):
    /// records buffer occupancy, back-pressure/starvation stalls, and
    /// source-to-sink token latencies for the cycle that just ran.
    fn observe_cycle(&self, obs: &SimObs, st: &mut ObsRunState, fired: &[bool], now: u64) {
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(h) = &obs.occupancy[i] {
                let len = match &n.unit {
                    Unit::Piped { pipe, .. }
                    | Unit::Pure { pipe, .. }
                    | Unit::Load { pipe, .. } => pipe.len(),
                    Unit::Buffer { q, .. } => q.len(),
                    Unit::Tagger { state } => state.len(),
                    Unit::Lsq { pipe, .. } => pipe.len(),
                    _ => 0,
                };
                h.record(len as u64);
            }
            match self.waiting_state(i, fired) {
                Some(Waiting::Stalled) => {
                    // Operands present but nothing fired: the node is
                    // back-pressured by a full output.
                    obs.stall_total.inc();
                    obs.stall_by_node[i].inc();
                }
                Some(Waiting::Starved) => obs.starved_total.inc(),
                None => {}
            }
        }
        // Source-to-sink latency: pair the k-th token drained from the
        // external inputs with the k-th token reaching an external output.
        let in_now: usize = self.input_chans.values().map(|&c| self.chans[c].q.len()).sum();
        for _ in in_now..st.in_remaining {
            st.consumed_at.push_back(now);
        }
        st.in_remaining = in_now;
        let out_now: usize = self.output_chans.values().map(|&c| self.chans[c].q.len()).sum();
        for _ in st.out_seen..out_now {
            if let Some(t) = st.consumed_at.pop_front() {
                obs.latency.record(now - t);
            }
        }
        st.out_seen = out_now;
    }

    /// Earliest future completion among pipelines and buffers, if any.
    fn next_pending(&self, now: u64) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                min = Some(min.map_or(t, |m: u64| m.min(t)));
            }
        };
        for n in &self.nodes {
            match &n.unit {
                Unit::Piped { pipe, .. } | Unit::Pure { pipe, .. } | Unit::Load { pipe, .. } => {
                    if let Some((_, t)) = pipe.front() {
                        consider(*t);
                    }
                }
                Unit::Buffer { q, .. } => {
                    if let Some((_, t)) = q.front() {
                        consider(*t);
                    }
                }
                Unit::Lsq { pipe, .. } => {
                    if let Some((_, _, t)) = pipe.front() {
                        consider(*t);
                    }
                }
                _ => {}
            }
        }
        min
    }

    /// Ready cycle of the head token of node `i`'s internal queue, if any.
    fn front_ready(&self, i: usize) -> Option<u64> {
        match &self.nodes[i].unit {
            Unit::Piped { pipe, .. } | Unit::Pure { pipe, .. } | Unit::Load { pipe, .. } => {
                pipe.front().map(|&(_, t)| t)
            }
            Unit::Buffer { q, .. } => q.front().map(|&(_, t)| t),
            Unit::Lsq { pipe, .. } => pipe.front().map(|&(_, _, t)| t),
            _ => None,
        }
    }

    /// One end-of-cycle attribution pass: classifies every waiting
    /// node-cycle by walking its blockage chain (DESIGN.md §3.8).
    fn attribute_cycle(&self, ss: &mut StallState, fired: &[bool]) {
        for i in 0..self.nodes.len() {
            let cause = match self.waiting_state(i, fired) {
                Some(Waiting::Stalled) => self.walk_downstream(i, ss),
                Some(Waiting::Starved) => self.walk_upstream(i, ss),
                None => continue,
            };
            ss.record(i, cause);
        }
    }

    /// Follows the back-pressure chain of stalled node `start` downstream
    /// along full channels to its root, filling `ss.path` with the
    /// channels crossed.
    fn walk_downstream(&self, start: usize, ss: &mut StallState) -> StallCause {
        ss.epoch += 1;
        ss.path.clear();
        ss.visited[start] = ss.epoch;
        let mut cur = start;
        loop {
            let Some(&c) = self.nodes[cur].outs.iter().find(|&&c| !self.chans[c].has_space())
            else {
                // No full output: held back by per-cycle firing caps, a
                // full internal pipeline, or tag exhaustion.
                return StallCause::BlockedDownstream;
            };
            ss.path.push(ChanIdx::trusted(c));
            let Some(j) = self.consumer_of[c] else { return StallCause::BlockedDownstream };
            let j = j as usize;
            match &self.nodes[j].unit {
                Unit::Sink => return StallCause::BlockedBySink,
                Unit::Lsq { .. } => return StallCause::LsqOrdering,
                Unit::Store { .. } | Unit::Load { .. } => return StallCause::MemoryDependency,
                Unit::Buffer { slots, q, .. } if q.len() >= *slots => {
                    return StallCause::BlockedByFullBuffer
                }
                _ => {}
            }
            if ss.visited[j] == ss.epoch {
                // Cyclic back-pressure (a clogged loop ring).
                return StallCause::BlockedDownstream;
            }
            ss.visited[j] = ss.epoch;
            cur = j;
        }
    }

    /// Follows the starvation chain of starved node `start` upstream
    /// along empty channels to its root, filling `ss.path` with the
    /// channels crossed.
    fn walk_upstream(&self, start: usize, ss: &mut StallState) -> StallCause {
        ss.epoch += 1;
        ss.path.clear();
        ss.visited[start] = ss.epoch;
        let mut cur = start;
        loop {
            let Some(&c) = self.nodes[cur].ins.iter().find(|&&c| self.chans[c].front().is_none())
            else {
                // Every input of the producer holds a token, yet ours did
                // not arrive: the producer is itself blocked.
                return StallCause::StarvedUpstream;
            };
            ss.path.push(ChanIdx::trusted(c));
            let Some(j) = self.producer_of[c] else {
                // The empty channel is an external input: drained.
                return StallCause::StarvedBySource;
            };
            let j = j as usize;
            match &self.nodes[j].unit {
                Unit::Lsq { pipe, .. } if !pipe.is_empty() => return StallCause::LsqOrdering,
                Unit::Load { pipe, .. } if !pipe.is_empty() => return StallCause::MemoryDependency,
                Unit::Piped { pipe, .. } | Unit::Pure { pipe, .. } if !pipe.is_empty() => {
                    return StallCause::PipelineLatency
                }
                Unit::Buffer { q, .. } if !q.is_empty() => return StallCause::PipelineLatency,
                Unit::Tagger { state } if !state.is_empty() => return StallCause::PipelineLatency,
                _ => {}
            }
            if ss.visited[j] == ss.epoch {
                return StallCause::StarvedUpstream;
            }
            ss.visited[j] = ss.epoch;
            cur = j;
        }
    }

    /// Tokens currently resident anywhere but the external outputs:
    /// channel latches, external input queues, latency pipelines,
    /// buffers, and tagger windows.
    fn tokens_in_flight(&self) -> usize {
        self.chans
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.output_chans.values().any(|c| c == i))
            .map(|(_, c)| c.q.len())
            .sum::<usize>()
            + self
                .nodes
                .iter()
                .map(|n| match &n.unit {
                    Unit::Piped { pipe, .. }
                    | Unit::Pure { pipe, .. }
                    | Unit::Load { pipe, .. } => pipe.len(),
                    Unit::Buffer { q, .. } => q.len(),
                    Unit::Tagger { state } => state.len(),
                    Unit::Lsq { pipe, .. } => pipe.len(),
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// Builds the stuck-wavefront report for a deadlock declared at
    /// `cycle`: every waiting node in index order, its blockage chain
    /// walked by the same machinery as stall attribution.
    fn deadlock_report(&self, fired: &[bool], cycle: u64) -> crate::stall::DeadlockReport {
        let mut ss = StallState::new(self.nodes.len(), self.chans.len());
        let mut wavefront = Vec::new();
        for i in 0..self.nodes.len() {
            let (stalled, cause) = match self.waiting_state(i, fired) {
                Some(Waiting::Stalled) => (true, self.walk_downstream(i, &mut ss)),
                Some(Waiting::Starved) => (false, self.walk_upstream(i, &mut ss)),
                None => continue,
            };
            wavefront.push(crate::stall::StuckNode {
                node: self.nodes[i].name.clone(),
                stalled,
                cause,
                path: ss.path.iter().map(|&c| self.chan_names[c as usize].clone()).collect(),
            });
        }
        crate::stall::DeadlockReport {
            cycle,
            tokens_in_flight: self.tokens_in_flight() as u64,
            wavefront,
        }
    }

    /// The quiescence-exit deadlock test (only with
    /// [`SimConfig::deadlock_window`] set): a *stalled* node at
    /// quiescence — all operands latched, nothing pending that could
    /// ever unblock its output — is a permanent deadlock. Starved-only
    /// quiescence is indistinguishable from normal termination with
    /// loop-priming leftovers and stays a successful finish.
    fn deadlock_at_quiescence(&self, st: &RunState) -> Option<SimError> {
        if self.cfg.deadlock_window == 0 {
            return None;
        }
        let stalled = (0..self.nodes.len())
            .any(|i| matches!(self.waiting_state(i, &st.fired), Some(Waiting::Stalled)));
        if !stalled {
            return None;
        }
        Some(SimError::Deadlock(Box::new(self.deadlock_report(&st.fired, st.now))))
    }

    /// Cycle-boundary resilience poll: cooperative cancellation, then the
    /// defensive no-progress window (the window must exceed the deepest
    /// pipeline latency, since idle fast-forward legitimately jumps the
    /// clock without firing).
    fn boundary_check(&self, st: &RunState) -> Result<(), SimError> {
        if let Some(tok) = &self.cfg.cancel {
            if tok.is_cancelled() {
                return Err(SimError::Cancelled);
            }
        }
        if self.cfg.deadlock_window > 0
            && st.now.saturating_sub(st.last_active) >= self.cfg.deadlock_window
            && self.tokens_in_flight() > 0
        {
            return Err(SimError::Deadlock(Box::new(self.deadlock_report(&st.fired, st.now))));
        }
        Ok(())
    }

    /// Closes an active cycle: records scheduler/occupancy/stall metrics
    /// (instrumented runs only), runs attribution and waveform capture
    /// (when configured), and advances the clock.
    fn end_active_cycle(&mut self, st: &mut RunState) {
        if let Some(obs) = &self.obs {
            obs.sched_examined.record(st.examined_cycle);
            if let Some(ost) = &mut st.obs_run {
                self.observe_cycle(obs, ost, &st.fired, st.now);
            }
        }
        if let Some(mut ss) = self.stall.take() {
            self.attribute_cycle(&mut ss, &st.fired);
            self.stall = Some(ss);
        }
        // Waveform capture honours the sampling stride; attribution and
        // the obs counters above stay per-cycle (the interpreter observes
        // for free, so only the log-growth-bound output is sampled).
        if st.active_cycles.is_multiple_of(self.cfg.wave_stride()) {
            if let Some(mut w) = self.wave.take() {
                w.capture(st.now, |c| {
                    let ch = &self.chans[c];
                    (ch.front().is_some(), ch.has_space(), ch.front().and_then(|v| v.untag().0))
                });
                self.wave = Some(w);
            }
        }
        st.active_cycles += 1;
        st.examined_cycle = 0;
        st.last_active = st.now;
        st.now += 1;
    }

    /// Runs to quiescence.
    ///
    /// # Errors
    ///
    /// Fails on memory faults, evaluation faults, or timeout.
    pub fn run(mut self, feeds: &BTreeMap<String, Vec<Value>>) -> Result<SimResult, SimError> {
        if let Some(art) = self.compiled.take() {
            return crate::compile::run(&art, feeds, std::mem::take(&mut self.memory), &self.cfg);
        }
        for (name, vals) in feeds {
            let chan = *self
                .input_chans
                .get(name)
                .ok_or_else(|| SimError::BadGraph(format!("no input named `{name}`")))?;
            for v in vals {
                self.chans[chan].q.push_back(v.clone());
            }
        }
        let n = self.nodes.len();
        let mut st = RunState {
            now: 0,
            firings: 0,
            last_active: 0,
            firings_by_node: vec![0; n],
            fired: vec![false; n],
            fired_list: Vec::with_capacity(n),
            examined: 0,
            examined_cycle: 0,
            pushes: 0,
            active_cycles: 0,
            // Per-run observation state, allocated only when a sink is
            // installed; the uninstrumented loop does none of this work.
            obs_run: self.obs.is_some().then(|| ObsRunState {
                in_remaining: self.input_chans.values().map(|&c| self.chans[c].q.len()).sum(),
                out_seen: self.output_chans.values().map(|&c| self.chans[c].q.len()).sum(),
                consumed_at: VecDeque::new(),
            }),
        };
        graphiti_obs::flight::record("sim.start", || {
            format!(
                "{} nodes, {} channels, scheduler={:?}",
                self.nodes.len(),
                self.chans.len(),
                self.cfg.scheduler
            )
        });
        let run = match self.cfg.scheduler {
            Scheduler::EventDriven => self.run_event(&mut st),
            Scheduler::ReferenceSweep => self.run_sweep(&mut st),
            // Compiled runs return from the delegation above; `new` always
            // installs the artifact for that scheduler.
            Scheduler::Compiled => unreachable!("compiled runs delegate before dispatch"),
        };
        if let Err(e) = &run {
            graphiti_obs::flight::record("sim.error", || format!("cycle {}: {e}", st.now));
            run?;
        }
        Ok(self.finish(st))
    }

    /// The reference scheduler: sweeps all nodes in index order until a
    /// whole pass fires nothing, cycle by cycle. Kept as the executable
    /// specification for the event-driven core.
    fn run_sweep(&mut self, st: &mut RunState) -> Result<(), SimError> {
        loop {
            for node in &mut self.nodes {
                node.accepted = false;
                node.emitted = false;
            }
            for f in st.fired.iter_mut() {
                *f = false;
            }
            let mut any = false;
            loop {
                let mut progress = false;
                for i in 0..self.nodes.len() {
                    st.examined += 1;
                    st.examined_cycle += 1;
                    if self.step(i, st.now)? {
                        progress = true;
                        any = true;
                        st.firings += 1;
                        st.firings_by_node[i] += 1;
                        st.fired[i] = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            if any {
                self.end_active_cycle(st);
            } else {
                st.examined_cycle = 0;
                match self.next_pending(st.now) {
                    Some(t) => st.now = t,
                    None => {
                        if let Some(e) = self.deadlock_at_quiescence(st) {
                            return Err(e);
                        }
                        break;
                    }
                }
            }
            self.boundary_check(st)?;
            if st.now > self.cfg.max_cycles {
                return Err(SimError::Timeout(self.cfg.max_cycles));
            }
        }
        Ok(())
    }

    /// The event-driven scheduler.
    ///
    /// Invariant: a node that is not on the worklist cannot fire until one
    /// of its channels changes, its per-cycle firing caps reset, or the
    /// clock reaches its pipeline head's ready cycle — and each of those
    /// events inserts it (channel events via the fanout tables, cap resets
    /// via the fired list at the cycle boundary, maturities via timers).
    ///
    /// To stay bit-identical to the sweep, the worklist is drained in
    /// node-index order, round by round: `cur` is the analogue of the
    /// current sweep pass, `nxt` of the following one. When node `i` fires,
    /// an affected node `j` is queued into `cur` if `j > i` (the sweep
    /// would still reach it this pass) and into `nxt` otherwise. Since a
    /// channel has exactly one producer and one consumer, a node's
    /// fireability only changes through events this marking covers, so
    /// examinations — and therefore fires — happen at exactly the same
    /// (pass, index) positions as in the sweep.
    fn run_event(&mut self, st: &mut RunState) -> Result<(), SimError> {
        let n = self.nodes.len();
        let mut cur: BinaryHeap<Reverse<u32>> = BinaryHeap::with_capacity(n);
        let mut nxt: BinaryHeap<Reverse<u32>> = BinaryHeap::with_capacity(n);
        // Cycle 0 examines everything: externally fed nodes, Init and
        // Constant generators all become fireable without a prior channel
        // event.
        let mut in_cur = vec![true; n];
        let mut in_nxt = vec![false; n];
        cur.extend((0..NodeIdx::trusted(n)).map(Reverse));
        // (ready cycle, node) for pipeline heads maturing in the future.
        let mut timers: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        st.pushes += n as u64;
        loop {
            let mut any = false;
            loop {
                while let Some(Reverse(i)) = cur.pop() {
                    let iu = i as usize;
                    in_cur[iu] = false;
                    st.examined += 1;
                    st.examined_cycle += 1;
                    if !self.step(iu, st.now)? {
                        continue;
                    }
                    any = true;
                    st.firings += 1;
                    st.firings_by_node[iu] += 1;
                    if !st.fired[iu] {
                        st.fired[iu] = true;
                        st.fired_list.push(i);
                    }
                    macro_rules! mark {
                        ($j:expr) => {{
                            let j: u32 = $j;
                            let ju = j as usize;
                            if j > i {
                                if !in_cur[ju] {
                                    in_cur[ju] = true;
                                    cur.push(Reverse(j));
                                    st.pushes += 1;
                                }
                            } else if !in_nxt[ju] {
                                in_nxt[ju] = true;
                                nxt.push(Reverse(j));
                                st.pushes += 1;
                            }
                        }};
                    }
                    // The fire changed internal state (and possibly several
                    // channels): recheck the node itself next round, plus
                    // the consumers of its outputs and the producers of its
                    // inputs.
                    mark!(i);
                    for k in 0..self.nodes[iu].outs.len() {
                        if let Some(j) = self.out_consumer(iu, k) {
                            mark!(j);
                        }
                    }
                    for k in 0..self.nodes[iu].ins.len() {
                        if let Some(j) = self.in_producer(iu, k) {
                            mark!(j);
                        }
                    }
                    // A token parked in a latency pipeline re-arms the node
                    // at its maturity cycle.
                    if let Some(t) = self.front_ready(iu) {
                        if t > st.now {
                            timers.push(Reverse((t, i)));
                        }
                    }
                }
                if nxt.is_empty() {
                    break;
                }
                std::mem::swap(&mut cur, &mut nxt);
                std::mem::swap(&mut in_cur, &mut in_nxt);
            }
            if any {
                self.end_active_cycle(st);
                // Per-cycle firing caps reset for nodes that fired, so they
                // may fire again: seed the new cycle with them.
                for &i in &st.fired_list {
                    let iu = i as usize;
                    self.nodes[iu].accepted = false;
                    self.nodes[iu].emitted = false;
                    st.fired[iu] = false;
                    if !in_cur[iu] {
                        in_cur[iu] = true;
                        cur.push(Reverse(i));
                        st.pushes += 1;
                    }
                }
                st.fired_list.clear();
                // Wake nodes whose pipeline head matures this cycle.
                while let Some(&Reverse((t, j))) = timers.peek() {
                    if t > st.now {
                        break;
                    }
                    timers.pop();
                    let ju = j as usize;
                    if !in_cur[ju] {
                        in_cur[ju] = true;
                        cur.push(Reverse(j));
                        st.pushes += 1;
                    }
                }
            } else {
                st.examined_cycle = 0;
                match self.next_pending(st.now) {
                    Some(t) => {
                        // Idle fast-forward: jump to the next maturity and
                        // wake every node whose pipeline head is then ready.
                        st.now = t;
                        for (iu, ic) in in_cur.iter_mut().enumerate() {
                            if let Some(r) = self.front_ready(iu) {
                                if r <= st.now && !*ic {
                                    *ic = true;
                                    cur.push(Reverse(NodeIdx::trusted(iu)));
                                    st.pushes += 1;
                                }
                            }
                        }
                        // Timers at or before the new clock are subsumed by
                        // the wake-up above.
                        while let Some(&Reverse((t2, _))) = timers.peek() {
                            if t2 > st.now {
                                break;
                            }
                            timers.pop();
                        }
                    }
                    None => {
                        if let Some(e) = self.deadlock_at_quiescence(st) {
                            return Err(e);
                        }
                        break;
                    }
                }
            }
            self.boundary_check(st)?;
            if st.now > self.cfg.max_cycles {
                return Err(SimError::Timeout(self.cfg.max_cycles));
            }
        }
        Ok(())
    }

    /// The node consuming output port `k` of node `i`, if the channel has
    /// an internal reader.
    fn out_consumer(&self, i: usize, k: usize) -> Option<u32> {
        self.consumer_of[self.nodes[i].outs[k]]
    }

    /// The node producing input port `k` of node `i`, if the channel has an
    /// internal writer.
    fn in_producer(&self, i: usize, k: usize) -> Option<u32> {
        self.producer_of[self.nodes[i].ins[k]]
    }

    /// Folds run state into the public [`SimResult`] shape: resolves node
    /// ids to names (trace events, per-node firings), drains the external
    /// output channels, and flushes scheduler metrics.
    fn finish(mut self, st: RunState) -> SimResult {
        let firings_by_node: BTreeMap<String, u64> = self
            .nodes
            .iter()
            .zip(&st.firings_by_node)
            .filter(|&(_, &c)| c > 0)
            .map(|(node, &c)| (node.name.clone(), c))
            .collect();
        let waveform = self.wave.take().map(WaveRecorder::finish);
        let stalls = self.stall.take().map(|ss| {
            let node_names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
            ss.finish(&node_names, &self.chan_names)
        });
        if let Some(obs) = &self.obs {
            // All handles were memoised by SimObs::new; the finish path
            // does no name formatting or registry locking.
            if let Some(report) = &stalls {
                for (cause, n) in report.cause_totals() {
                    obs.stall_cause[cause.index()].add(n);
                }
            }
            obs.firings.add(st.firings);
            obs.cycles.add(st.last_active + 1);
            obs.examined.add(st.examined);
            obs.worklist_pushes.add(st.pushes);
            if let Some(rate) = st.firings.saturating_mul(1000).checked_div(st.examined) {
                obs.fire_rate.set(rate as i64);
            }
            for (i, &count) in st.firings_by_node.iter().enumerate() {
                if count > 0 {
                    obs.fire_by_node[i].add(count);
                }
            }
            for node in &self.nodes {
                if let Unit::Lsq { stats, .. } = &node.unit {
                    stats.flush();
                }
            }
        }
        graphiti_obs::flight::record("sim.finish", || {
            format!("cycles={} firings={}", st.last_active + 1, st.firings)
        });
        let leftover = self.tokens_in_flight();
        let output_chans = std::mem::take(&mut self.output_chans);
        let outputs = output_chans
            .into_iter()
            .map(|(name, c)| (name, Vec::from(std::mem::take(&mut self.chans[c].q))))
            .collect();
        let trace = std::mem::take(&mut self.trace)
            .into_iter()
            .map(|(cycle, i, values)| TraceEvent {
                cycle,
                node: self.nodes[i as usize].name.clone(),
                values,
            })
            .collect();
        SimResult {
            cycles: st.last_active + 1,
            outputs,
            memory: self.memory,
            firings: st.firings,
            leftover_tokens: leftover,
            firings_by_node,
            trace,
            waveform,
            stalls,
        }
    }
}

/// Convenience: builds and runs a simulation in one call.
///
/// # Errors
///
/// See [`Simulator::new`] and [`Simulator::run`].
pub fn simulate(
    g: &ExprHigh,
    feeds: &BTreeMap<String, Vec<Value>>,
    memory: Memory,
    cfg: SimConfig,
) -> Result<SimResult, SimError> {
    Simulator::new(g, memory, cfg)?.run(feeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_ir::ep;

    fn feeds(name: &str, vals: Vec<Value>) -> BTreeMap<String, Vec<Value>> {
        [(name.to_string(), vals)].into_iter().collect()
    }

    #[test]
    fn combinational_chain_passes_in_one_cycle() {
        // x -> add(+1) -> add(+1) -> y, both combinational (AddI latency 0).
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("c", CompKind::Constant { value: Value::Int(1) }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddI }).unwrap();
        g.expose_input("x", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("c", "ctrl")).unwrap();
        g.connect(ep("c", "out"), ep("a", "in1")).unwrap();
        g.expose_output("y", ep("a", "out")).unwrap();
        let r = simulate(&g, &feeds("x", vec![Value::Int(4)]), Memory::new(), SimConfig::default())
            .unwrap();
        assert_eq!(r.outputs["y"], vec![Value::Int(5)]);
        assert_eq!(r.cycles, 1, "combinational flow completes in one cycle");
    }

    #[test]
    fn pipelined_unit_has_latency_and_full_throughput() {
        // Two fadds in sequence on a stream of 5 tokens: latency adds, but
        // II stays 1 so the makespan is latency + tokens - 1 + 1.
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddF }).unwrap();
        g.expose_input("x", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
        g.expose_output("y", ep("a", "out")).unwrap();
        let vals: Vec<Value> = (0..5).map(|i| Value::from_f64(i as f64)).collect();
        let r = simulate(&g, &feeds("x", vals), Memory::new(), SimConfig::default()).unwrap();
        assert_eq!(r.outputs["y"].len(), 5);
        assert_eq!(r.outputs["y"][2], Value::from_f64(4.0));
        // latency 10, 5 tokens at II=1: last emerges at cycle 10+4.
        assert_eq!(r.cycles, 15);
    }

    #[test]
    fn opaque_buffer_adds_a_cycle() {
        let mut g = ExprHigh::new();
        g.add_node("b", CompKind::Buffer { slots: 2, transparent: false }).unwrap();
        g.expose_input("x", ep("b", "in")).unwrap();
        g.expose_output("y", ep("b", "out")).unwrap();
        let r = simulate(&g, &feeds("x", vec![Value::Int(1)]), Memory::new(), SimConfig::default())
            .unwrap();
        assert_eq!(r.outputs["y"], vec![Value::Int(1)]);
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn memory_ports_load_and_store() {
        // y[i] = a[i] for one token i=1.
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("ld", CompKind::Load { mem: "a".into() }).unwrap();
        g.add_node("st", CompKind::Store { mem: "y".into() }).unwrap();
        g.add_node("k", CompKind::Sink).unwrap();
        g.expose_input("i", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("ld", "addr")).unwrap();
        g.connect(ep("f", "out1"), ep("st", "addr")).unwrap();
        g.connect(ep("ld", "data"), ep("st", "data")).unwrap();
        g.connect(ep("st", "done"), ep("k", "in")).unwrap();
        let mem: Memory = [
            ("a".to_string(), vec![Value::Int(10), Value::Int(20)]),
            ("y".to_string(), vec![Value::Int(0), Value::Int(0)]),
        ]
        .into_iter()
        .collect();
        let r = simulate(&g, &feeds("i", vec![Value::Int(1)]), mem, SimConfig::default()).unwrap();
        assert_eq!(r.memory["y"], vec![Value::Int(0), Value::Int(20)]);
    }

    #[test]
    fn tagger_reorders_and_reuses_tags() {
        // in -> tagger.tagged -> buffer -> retag (identity region);
        // out releases in order. One token flows through.
        let mut g = ExprHigh::new();
        g.add_node("t", CompKind::TaggerUntagger { tags: 2 }).unwrap();
        g.add_node("b", CompKind::Buffer { slots: 4, transparent: true }).unwrap();
        g.expose_input("x", ep("t", "in")).unwrap();
        g.connect(ep("t", "tagged"), ep("b", "in")).unwrap();
        g.connect(ep("b", "out"), ep("t", "retag")).unwrap();
        g.expose_output("y", ep("t", "out")).unwrap();
        let r = simulate(
            &g,
            &feeds("x", vec![Value::Int(7), Value::Int(8), Value::Int(9)]),
            Memory::new(),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.outputs["y"], vec![Value::Int(7), Value::Int(8), Value::Int(9)]);
        assert_eq!(r.leftover_tokens, 0);
    }

    #[test]
    fn branch_and_mux_steer_tokens() {
        // branch routes by condition; tokens alternate outputs.
        let mut g = ExprHigh::new();
        g.add_node("br", CompKind::Branch).unwrap();
        g.expose_input("c", ep("br", "cond")).unwrap();
        g.expose_input("d", ep("br", "in")).unwrap();
        g.expose_output("t", ep("br", "t")).unwrap();
        g.expose_output("f", ep("br", "f")).unwrap();
        let mut fs = feeds("c", vec![Value::Bool(true), Value::Bool(false)]);
        fs.insert("d".into(), vec![Value::Int(1), Value::Int(2)]);
        let r = simulate(&g, &fs, Memory::new(), SimConfig::default()).unwrap();
        assert_eq!(r.outputs["t"], vec![Value::Int(1)]);
        assert_eq!(r.outputs["f"], vec![Value::Int(2)]);
    }

    #[test]
    fn schedulers_agree_on_tagged_pipeline() {
        // Tagger + pipelined FU + buffer exercise every event source the
        // worklist must cover: channel pushes/pops, per-cycle cap resets,
        // and pipeline maturities (including idle fast-forward).
        let mut g = ExprHigh::new();
        g.add_node("t", CompKind::TaggerUntagger { tags: 2 }).unwrap();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddF }).unwrap();
        g.add_node("b", CompKind::Buffer { slots: 4, transparent: false }).unwrap();
        g.expose_input("x", ep("t", "in")).unwrap();
        g.connect(ep("t", "tagged"), ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
        g.connect(ep("a", "out"), ep("b", "in")).unwrap();
        g.connect(ep("b", "out"), ep("t", "retag")).unwrap();
        g.expose_output("y", ep("t", "out")).unwrap();
        let vals: Vec<Value> = (0..6).map(|i| Value::from_f64(i as f64)).collect();
        let run = |scheduler| {
            simulate(
                &g,
                &feeds("x", vals.clone()),
                Memory::new(),
                SimConfig { scheduler, ..Default::default() },
            )
            .unwrap()
        };
        let ev = run(Scheduler::EventDriven);
        let sw = run(Scheduler::ReferenceSweep);
        let co = run(Scheduler::Compiled);
        for r in [&sw, &co] {
            assert_eq!(ev.cycles, r.cycles);
            assert_eq!(ev.outputs, r.outputs);
            assert_eq!(ev.firings, r.firings);
            assert_eq!(ev.firings_by_node, r.firings_by_node);
            assert_eq!(ev.leftover_tokens, r.leftover_tokens);
        }
    }

    #[test]
    fn compiled_scheduler_matches_on_memory_circuit() {
        // Load + Store + Mux/Branch/Merge exercise the memory ports, the
        // dynamic-region fallback, and idle fast-forward under Compiled.
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("ld", CompKind::Load { mem: "a".into() }).unwrap();
        g.add_node("st", CompKind::Store { mem: "y".into() }).unwrap();
        g.add_node("k", CompKind::Sink).unwrap();
        g.expose_input("i", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("ld", "addr")).unwrap();
        g.connect(ep("f", "out1"), ep("st", "addr")).unwrap();
        g.connect(ep("ld", "data"), ep("st", "data")).unwrap();
        g.connect(ep("st", "done"), ep("k", "in")).unwrap();
        let mem: Memory = [
            ("a".to_string(), vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
            ("y".to_string(), vec![Value::Int(0); 3]),
        ]
        .into_iter()
        .collect();
        let run = |scheduler| {
            simulate(
                &g,
                &feeds("i", vec![Value::Int(2), Value::Int(0), Value::Int(1)]),
                mem.clone(),
                SimConfig { scheduler, ..Default::default() },
            )
            .unwrap()
        };
        let ev = run(Scheduler::EventDriven);
        let co = run(Scheduler::Compiled);
        assert_eq!(ev.cycles, co.cycles);
        assert_eq!(ev.memory, co.memory);
        assert_eq!(ev.firings_by_node, co.firings_by_node);
        assert_eq!(ev.leftover_tokens, co.leftover_tokens);
    }

    #[test]
    fn compiled_scheduler_rejects_observation_hooks_without_telemetry() {
        let mut g = ExprHigh::new();
        g.add_node("b", CompKind::Buffer { slots: 1, transparent: true }).unwrap();
        g.expose_input("x", ep("b", "in")).unwrap();
        g.expose_output("y", ep("b", "out")).unwrap();
        let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
        for (bad, what) in [
            (SimConfig { waveform: true, ..cfg.clone() }, "waveform capture"),
            (SimConfig { attribute_stalls: true, ..cfg.clone() }, "stall attribution"),
            (SimConfig { trace_nodes: vec!["b".into()], ..cfg.clone() }, "node tracing"),
        ] {
            let err = Simulator::new(&g, Memory::new(), bad).err().unwrap();
            // The diagnostic names the scheduler and the enabling flag,
            // not just the rejected feature.
            assert_eq!(err, compiled_needs_telemetry(what));
            let msg = err.to_string();
            assert!(msg.contains("Scheduler::Compiled"), "{msg}");
            assert!(msg.contains("SimConfig::telemetry"), "{msg}");
            assert!(msg.contains(what), "{msg}");
        }
    }

    #[test]
    fn compiled_scheduler_observes_under_telemetry() {
        let mut g = ExprHigh::new();
        g.add_node("b", CompKind::Buffer { slots: 1, transparent: true }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddI }).unwrap();
        g.expose_input("x", ep("b", "in")).unwrap();
        g.expose_input("z", ep("a", "in1")).unwrap();
        g.connect(ep("b", "out"), ep("a", "in0")).unwrap();
        g.expose_output("y", ep("a", "out")).unwrap();
        let mut fs = feeds("x", vec![Value::Int(1), Value::Int(2)]);
        fs.insert("z".into(), vec![Value::Int(10), Value::Int(20)]);
        let run = |scheduler| {
            simulate(
                &g,
                &fs,
                Memory::new(),
                SimConfig {
                    scheduler,
                    telemetry: true,
                    waveform: true,
                    attribute_stalls: true,
                    trace_nodes: vec!["a".into()],
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let ev = run(Scheduler::EventDriven);
        let co = run(Scheduler::Compiled);
        assert_eq!(ev.outputs, co.outputs);
        assert_eq!(ev.waveform, co.waveform, "VCD documents must be byte-identical");
        assert_eq!(ev.stalls, co.stalls, "stall reports must agree");
        assert_eq!(ev.trace, co.trace, "trace events must agree");
        let report = co.stalls.as_ref().unwrap();
        let attributed: u64 = report.cause_totals().values().sum();
        assert_eq!(attributed, report.stall_cycles + report.starved_cycles);
    }

    #[test]
    fn wave_sampling_matches_across_schedulers() {
        let mut g = ExprHigh::new();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddF }).unwrap();
        g.expose_input("x", ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
        g.expose_output("y", ep("a", "out")).unwrap();
        let vals: Vec<Value> = (0..8).map(|i| Value::from_f64(i as f64)).collect();
        let run = |scheduler, stride| {
            simulate(
                &g,
                &feeds("x", vals.clone()),
                Memory::new(),
                SimConfig {
                    scheduler,
                    telemetry: true,
                    waveform: true,
                    wave_sample: stride,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        for stride in [1, 3, 7] {
            let ev = run(Scheduler::EventDriven, stride);
            let sw = run(Scheduler::ReferenceSweep, stride);
            let co = run(Scheduler::Compiled, stride);
            assert_eq!(ev.waveform, sw.waveform, "stride {stride}");
            assert_eq!(ev.waveform, co.waveform, "stride {stride}");
        }
        // A wider stride must not record more VCD bytes than stride 1.
        let full = run(Scheduler::EventDriven, 1).waveform.unwrap();
        let sampled = run(Scheduler::EventDriven, 7).waveform.unwrap();
        assert!(sampled.len() <= full.len());
    }

    #[test]
    fn compiled_artifacts_are_cached_by_content() {
        let build = |slots| {
            let mut g = ExprHigh::new();
            g.add_node("b", CompKind::Buffer { slots, transparent: true }).unwrap();
            g.expose_input("x", ep("b", "in")).unwrap();
            g.expose_output("y", ep("b", "out")).unwrap();
            g
        };
        let cfg = SimConfig { scheduler: Scheduler::Compiled, ..Default::default() };
        crate::compile::compile_cache_clear();
        let (h0, m0) = crate::compile::compile_cache_stats();
        let stats = crate::compile::precompile(&build(3), &cfg).unwrap();
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.chans, 2, "one input queue, one output queue");
        assert_eq!(stats.static_nodes, 1, "an untagged buffer is in-order");
        // Same circuit: cache hit. Different slot count: distinct artifact.
        crate::compile::precompile(&build(3), &cfg).unwrap();
        crate::compile::precompile(&build(4), &cfg).unwrap();
        let (h1, m1) = crate::compile::compile_cache_stats();
        assert_eq!(h1 - h0, 1);
        assert_eq!(m1 - m0, 2);
    }

    #[test]
    fn timeout_is_detected() {
        // A loop that never terminates: merge feeding itself through a
        // buffer, primed by one token.
        let mut g = ExprHigh::new();
        g.add_node("m", CompKind::Merge).unwrap();
        g.add_node("b", CompKind::Buffer { slots: 2, transparent: false }).unwrap();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("k", CompKind::Sink).unwrap();
        g.expose_input("x", ep("m", "in0")).unwrap();
        g.connect(ep("m", "out"), ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("b", "in")).unwrap();
        g.connect(ep("f", "out1"), ep("k", "in")).unwrap();
        g.connect(ep("b", "out"), ep("m", "in1")).unwrap();
        // The deadlock window is armed, yet a livelock keeps firing (the
        // clock never outruns `last_active` and quiescence never comes),
        // so the verdict stays Timeout — deadlock and timeout are
        // distinct diagnoses.
        let r = simulate(
            &g,
            &feeds("x", vec![Value::Int(1)]),
            Memory::new(),
            SimConfig { max_cycles: 1000, deadlock_window: 64, ..Default::default() },
        );
        assert_eq!(r.unwrap_err(), SimError::Timeout(1000));
    }
}
