//! Area model: LUT / FF / DSP estimates per component (the Vivado
//! post-place-and-route utilization substitute).
//!
//! Constants approximate 32/64-bit elastic components on a Kintex-7-class
//! device. The structurally-driven effects of the paper's Table 3 follow:
//! tagged circuits pay for the Tagger's reorder buffer (FFs scale with the
//! tag count — the matvec blow-up with 50 tags), the extra Merges and wider
//! buffers; DSPs come only from the floating-point and integer-multiply
//! units, so they are identical across the dataflow flows.

use graphiti_ir::{CompKind, ExprHigh, Op, PureFn};
use std::ops::Add;

/// Resource usage triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Area {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP blocks.
    pub dsp: u64,
}

impl Add for Area {
    type Output = Area;

    fn add(self, o: Area) -> Area {
        Area { lut: self.lut + o.lut, ff: self.ff + o.ff, dsp: self.dsp + o.dsp }
    }
}

impl Area {
    /// A triple literal.
    pub fn new(lut: u64, ff: u64, dsp: u64) -> Area {
        Area { lut, ff, dsp }
    }
}

/// Area of one operator unit.
pub fn op_area(op: Op) -> Area {
    match op {
        Op::AddI | Op::SubI => Area::new(36, 2, 0),
        Op::MulI => Area::new(24, 22, 1),
        Op::Mod | Op::DivI => Area::new(190, 170, 0),
        Op::LtI | Op::GeI | Op::EqI => Area::new(36, 2, 0),
        Op::NeZero => Area::new(11, 1, 0),
        Op::Not | Op::And | Op::Or => Area::new(2, 1, 0),
        Op::AddF | Op::SubF => Area::new(310, 260, 2),
        Op::MulF => Area::new(118, 145, 3),
        Op::DivF => Area::new(760, 710, 0),
        Op::GeF | Op::LtF => Area::new(82, 60, 0),
        Op::Select => Area::new(33, 2, 0),
        Op::IToF => Area::new(100, 92, 0),
    }
}

fn purefn_area(f: &PureFn) -> Area {
    match f {
        PureFn::Comp(a, b) | PureFn::Par(a, b) => purefn_area(a) + purefn_area(b),
        PureFn::Op(op) => op_area(*op),
        PureFn::Load(_) => Area::new(45, 36, 0),
        PureFn::Const(_) => Area::new(4, 2, 0),
        _ => Area::new(6, 1, 0),
    }
}

/// Area of one component instance.
pub fn component_area(kind: &CompKind) -> Area {
    match kind {
        CompKind::Fork { ways } => Area::new(4 + 2 * *ways as u64, 2, 0),
        CompKind::Join => Area::new(12, 2, 0),
        CompKind::Split => Area::new(8, 2, 0),
        CompKind::Mux => Area::new(38, 3, 0),
        CompKind::Branch => Area::new(34, 3, 0),
        CompKind::Merge => Area::new(41, 3, 0),
        CompKind::Init { .. } => Area::new(6, 4, 0),
        CompKind::Buffer { slots, transparent } => {
            // Deep buffers map to LUT-RAM-style FIFOs: FF cost saturates.
            let eff = (*slots).min(16) as u64;
            if *transparent {
                Area::new(10 + 6 * eff, 4, 0)
            } else {
                Area::new(12 + 4 * eff, 6 + 34 * eff, 0)
            }
        }
        CompKind::Sink => Area::new(1, 0, 0),
        CompKind::Constant { .. } => Area::new(4, 2, 0),
        CompKind::Operator { op } => op_area(*op),
        CompKind::Pure { func } => purefn_area(func) + Area::new(20, 8, 0),
        CompKind::TaggerUntagger { tags } => {
            let t = *tags as u64;
            Area::new(72 + 8 * t, 52 + 70 * t, 0)
        }
        CompKind::Load { .. } => Area::new(45, 36, 0),
        CompKind::Store { .. } => Area::new(38, 26, 0),
        CompKind::StoreQueue { body_plan, epi_plan, .. } => {
            // Per access site: a port (load or store) plus an entry in the
            // pending window and the disambiguation comparators.
            let sites = (body_plan.len() + epi_plan.len()).max(1) as u64;
            Area::new(60 + 44 * sites, 48 + 30 * sites, 0)
        }
    }
}

/// Total area of a circuit.
pub fn circuit_area(g: &ExprHigh) -> Area {
    g.nodes().fold(Area::default(), |acc, (_, k)| acc + component_area(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_ir::ep;

    #[test]
    fn tagger_ff_scales_with_tags() {
        let small = component_area(&CompKind::TaggerUntagger { tags: 8 });
        let big = component_area(&CompKind::TaggerUntagger { tags: 50 });
        assert!(big.ff > 5 * small.ff / 2, "{} vs {}", big.ff, small.ff);
        assert!(big.ff - small.ff >= 70 * 42);
    }

    #[test]
    fn dsp_comes_only_from_multipliers_and_fp() {
        assert_eq!(op_area(Op::AddI).dsp, 0);
        assert_eq!(op_area(Op::MulF).dsp, 3);
        assert_eq!(op_area(Op::AddF).dsp, 2);
        assert_eq!(op_area(Op::MulI).dsp, 1);
    }

    #[test]
    fn circuit_area_sums_components() {
        let mut g = ExprHigh::new();
        g.add_node("a", CompKind::Operator { op: Op::MulF }).unwrap();
        g.add_node("b", CompKind::Operator { op: Op::AddF }).unwrap();
        g.expose_input("x0", ep("a", "in0")).unwrap();
        g.expose_input("x1", ep("a", "in1")).unwrap();
        g.expose_input("x2", ep("b", "in1")).unwrap();
        g.connect(ep("a", "out"), ep("b", "in0")).unwrap();
        g.expose_output("y", ep("b", "out")).unwrap();
        let area = circuit_area(&g);
        assert_eq!(area.dsp, 5, "fmul(3) + fadd(2) = the paper's matvec DSP count");
        assert_eq!(area.lut, 310 + 118);
    }

    #[test]
    fn pure_area_reflects_its_function() {
        let f = PureFn::comp(PureFn::Op(Op::AddF), PureFn::par(PureFn::Op(Op::MulF), PureFn::Id));
        let a = component_area(&CompKind::Pure { func: f });
        assert_eq!(a.dsp, 5);
    }
}
