//! Stall-cause attribution: *why* a node lost a cycle.
//!
//! The observability layer counts how many node-cycles were lost to
//! back-pressure (`sim.stall_cycles`) and missing operands
//! (`sim.starved_cycles`), but a count cannot say where the pressure came
//! from. This module classifies every lost node-cycle by walking the
//! elastic handshake graph from the waiting node to the root of its
//! blockage (see DESIGN.md §3.8):
//!
//! * a **stalled** node (all operands present, no fire) is walked
//!   *downstream* along full channels until the walk reaches a Sink, a
//!   memory port, a full Buffer, or can go no further;
//! * a **starved** node (some operands present, some missing) is walked
//!   *upstream* along empty channels until it reaches a drained external
//!   input, a memory port, or a unit holding the missing token in a
//!   latency pipeline.
//!
//! Every waiting node-cycle receives exactly one cause, so the per-cause
//! counters sum to the `sim.stall_cycles` / `sim.starved_cycles` totals
//! by construction — a property the test suite pins.

use std::collections::BTreeMap;
use std::fmt;

/// Why a node lost a cycle. The first five variants are back-pressure
/// (stall) roots, the last three starvation roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// The back-pressure chain ends at a Sink that has hit its per-cycle
    /// acceptance cap — the drain is the bottleneck.
    BlockedBySink,
    /// The chain ends at a Buffer whose slots are all occupied.
    BlockedByFullBuffer,
    /// The chain ends at a memory port (Load/Store) — an address or
    /// commit queue is the bottleneck.
    MemoryDependency,
    /// The chain ends at a store queue: the token is held back by
    /// program-order memory serialisation (an older store not yet
    /// committed, or a load awaiting disambiguation).
    LsqOrdering,
    /// The chain cannot be followed further (cyclic back-pressure around
    /// a loop ring, per-cycle firing caps, or tag exhaustion).
    BlockedDownstream,
    /// The starvation chain ends at a drained external input: there is
    /// simply no more work arriving.
    StarvedBySource,
    /// The missing operand is in flight inside a latency pipeline or an
    /// opaque buffer and will mature in a later cycle.
    PipelineLatency,
    /// The chain cannot be followed further upstream (the producer is
    /// itself blocked, or the chain is cyclic).
    StarvedUpstream,
}

/// All causes, in report order.
pub const STALL_CAUSES: [StallCause; 8] = [
    StallCause::BlockedBySink,
    StallCause::BlockedByFullBuffer,
    StallCause::MemoryDependency,
    StallCause::LsqOrdering,
    StallCause::BlockedDownstream,
    StallCause::StarvedBySource,
    StallCause::PipelineLatency,
    StallCause::StarvedUpstream,
];

impl StallCause {
    /// Stable kebab-case name (used in reports, JSON, and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            StallCause::BlockedBySink => "blocked-by-sink",
            StallCause::BlockedByFullBuffer => "blocked-by-full-buffer",
            StallCause::MemoryDependency => "memory-dependency",
            StallCause::LsqOrdering => "lsq-ordering",
            StallCause::BlockedDownstream => "blocked-downstream",
            StallCause::StarvedBySource => "starved-by-source",
            StallCause::PipelineLatency => "pipeline-latency",
            StallCause::StarvedUpstream => "starved-upstream",
        }
    }

    /// Whether this cause classifies a back-pressure stall (as opposed
    /// to a starvation).
    pub fn is_stall(self) -> bool {
        matches!(
            self,
            StallCause::BlockedBySink
                | StallCause::BlockedByFullBuffer
                | StallCause::MemoryDependency
                | StallCause::LsqOrdering
                | StallCause::BlockedDownstream
        )
    }

    pub(crate) fn index(self) -> usize {
        STALL_CAUSES.iter().position(|&c| c == self).expect("cause listed")
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Waiting statistics of one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeWaitStats {
    /// Node-cycles lost to back-pressure (operands ready, no fire).
    pub stalled: u64,
    /// Node-cycles lost waiting on missing operands.
    pub starved: u64,
    /// Lost node-cycles per root cause. Sums to `stalled + starved`.
    pub causes: BTreeMap<StallCause, u64>,
}

/// One distinct blockage chain: the channel path from a waiting node to
/// the root of its blockage, with how many node-cycles it cost in total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallChain {
    /// Root cause at the end of the chain.
    pub cause: StallCause,
    /// Channel names from the waiting node towards the root.
    pub path: Vec<String>,
    /// Node-cycles attributed to this exact chain.
    pub lost_cycles: u64,
}

/// The aggregated attribution result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Total stalled node-cycles (equals `sim.stall_cycles`).
    pub stall_cycles: u64,
    /// Total starved node-cycles (equals `sim.starved_cycles`).
    pub starved_cycles: u64,
    /// Per-node waiting statistics (nodes that never waited are absent).
    pub by_node: BTreeMap<String, NodeWaitStats>,
    /// Channels ranked by the node-cycles lost along chains through
    /// them, descending.
    pub channels: Vec<(String, u64)>,
    /// Distinct blockage chains, ranked by lost node-cycles descending.
    pub chains: Vec<StallChain>,
    /// Chains dropped because the distinct-chain table overflowed.
    pub dropped_chains: u64,
}

impl StallReport {
    /// Total lost node-cycles per cause, summed over all nodes.
    pub fn cause_totals(&self) -> BTreeMap<StallCause, u64> {
        let mut totals = BTreeMap::new();
        for stats in self.by_node.values() {
            for (&cause, &n) in &stats.causes {
                *totals.entry(cause).or_insert(0) += n;
            }
        }
        totals
    }

    /// Renders the report as the human-readable `explain-stalls` text:
    /// totals, cause breakdown, the top-`k` chains, and the top-`k`
    /// critical channels.
    pub fn render(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.stall_cycles + self.starved_cycles;
        let _ = writeln!(
            out,
            "lost node-cycles: {total} ({} stalled, {} starved)",
            self.stall_cycles, self.starved_cycles
        );
        if total == 0 {
            return out;
        }
        out.push_str("causes:\n");
        let totals = self.cause_totals();
        let width = STALL_CAUSES.iter().map(|c| c.as_str().len()).max().unwrap_or(0);
        for cause in STALL_CAUSES {
            if let Some(&n) = totals.get(&cause) {
                let pct = n as f64 / total as f64 * 100.0;
                let _ = writeln!(out, "  {:<width$}  {n:>8}  {pct:>5.1}%", cause.as_str());
            }
        }
        let _ = writeln!(out, "top {k} stall chains:");
        for (i, ch) in self.chains.iter().take(k).enumerate() {
            let path =
                if ch.path.is_empty() { "(at node)".to_string() } else { ch.path.join(" -> ") };
            let _ = writeln!(
                out,
                "  {:>2}. {:>8} node-cycles  {:<width$}  via {path}",
                i + 1,
                ch.lost_cycles,
                ch.cause.as_str()
            );
        }
        if self.dropped_chains > 0 {
            let _ = writeln!(
                out,
                "  ({} node-cycles in chains beyond the {}-entry table)",
                self.dropped_chains, MAX_DISTINCT_CHAINS
            );
        }
        let _ = writeln!(out, "critical channels:");
        for (name, lost) in self.channels.iter().take(k) {
            let _ = writeln!(out, "  {lost:>8} node-cycles through {name}");
        }
        out
    }
}

/// One node of a deadlock wavefront: a node still waiting when the
/// simulation quiesced (or exhausted its progress window) with tokens in
/// flight. The blockage chain is produced by the same walkers as stall
/// attribution, so the report reads like one `explain-stalls` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckNode {
    /// Node name.
    pub node: String,
    /// True for a stalled node (all operands present, output blocked) —
    /// the definitive deadlock witnesses; false for a starved one.
    pub stalled: bool,
    /// Root cause at the end of the blockage chain.
    pub cause: StallCause,
    /// Channel names from the node towards the root of its blockage.
    pub path: Vec<String>,
}

/// The stuck-wavefront report carried by [`crate::SimError::Deadlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which the deadlock was declared.
    pub cycle: u64,
    /// Tokens still in flight: channel latches, external queues, latency
    /// pipelines, buffers, and tagger windows.
    pub tokens_in_flight: u64,
    /// Every waiting node, in node-index order. At least one entry is
    /// stalled whenever the deadlock was declared at quiescence.
    pub wavefront: Vec<StuckNode>,
}

impl DeadlockReport {
    /// Renders the wavefront as human-readable lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "deadlock at cycle {}: {} tokens in flight, {} nodes stuck",
            self.cycle,
            self.tokens_in_flight,
            self.wavefront.len()
        );
        for n in &self.wavefront {
            let kind = if n.stalled { "stalled" } else { "starved" };
            let path =
                if n.path.is_empty() { "(at node)".to_string() } else { n.path.join(" -> ") };
            let _ = writeln!(out, "  {} [{kind}] {} via {path}", n.node, n.cause.as_str());
        }
        out
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock at cycle {} with {} tokens in flight ({} stuck nodes)",
            self.cycle,
            self.tokens_in_flight,
            self.wavefront.len()
        )
    }
}

/// Upper bound on distinct chains kept (beyond it, lost cycles are still
/// counted per cause/node/channel, only the exact path is dropped).
pub(crate) const MAX_DISTINCT_CHAINS: usize = 4096;

/// Mutable attribution state carried through a run (allocated only when
/// [`crate::SimConfig::attribute_stalls`] is set).
pub(crate) struct StallState {
    /// Per node × cause counts (indexed by [`StallCause::index`]).
    pub node_causes: Vec<[u64; STALL_CAUSES.len()]>,
    /// Per node stalled totals.
    pub node_stalled: Vec<u64>,
    /// Per node starved totals.
    pub node_starved: Vec<u64>,
    /// Per channel: node-cycles lost along chains through it.
    pub chan_lost: Vec<u64>,
    /// Distinct (cause, channel path) chains with lost node-cycles.
    pub chains: BTreeMap<(u8, Vec<u32>), u64>,
    /// Node-cycles whose chains overflowed the table.
    pub dropped_chains: u64,
    /// Epoch-marked visited set for the chain walks.
    pub visited: Vec<u64>,
    /// Current walk epoch.
    pub epoch: u64,
    /// Reusable path scratch buffer.
    pub path: Vec<u32>,
}

impl StallState {
    pub(crate) fn new(nodes: usize, chans: usize) -> StallState {
        StallState {
            node_causes: vec![[0; STALL_CAUSES.len()]; nodes],
            node_stalled: vec![0; nodes],
            node_starved: vec![0; nodes],
            chan_lost: vec![0; chans],
            chains: BTreeMap::new(),
            dropped_chains: 0,
            visited: vec![0; nodes],
            epoch: 0,
            path: Vec::new(),
        }
    }

    /// Records one attributed node-cycle: the waiting node, its root
    /// cause, and the channel path walked to reach the root.
    pub(crate) fn record(&mut self, node: usize, cause: StallCause) {
        self.node_causes[node][cause.index()] += 1;
        if cause.is_stall() {
            self.node_stalled[node] += 1;
        } else {
            self.node_starved[node] += 1;
        }
        for &c in &self.path {
            self.chan_lost[c as usize] += 1;
        }
        let key = (cause.index() as u8, self.path.clone());
        if let Some(n) = self.chains.get_mut(&key) {
            *n += 1;
        } else if self.chains.len() < MAX_DISTINCT_CHAINS {
            self.chains.insert(key, 1);
        } else {
            self.dropped_chains += 1;
        }
    }

    /// Folds the state into the public report, resolving ids to names.
    pub(crate) fn finish(self, node_names: &[String], chan_names: &[String]) -> StallReport {
        let mut by_node = BTreeMap::new();
        let (mut stall_cycles, mut starved_cycles) = (0u64, 0u64);
        for (i, causes) in self.node_causes.iter().enumerate() {
            stall_cycles += self.node_stalled[i];
            starved_cycles += self.node_starved[i];
            if self.node_stalled[i] + self.node_starved[i] == 0 {
                continue;
            }
            let cause_map = STALL_CAUSES
                .iter()
                .filter(|c| causes[c.index()] > 0)
                .map(|&c| (c, causes[c.index()]))
                .collect();
            by_node.insert(
                node_names[i].clone(),
                NodeWaitStats {
                    stalled: self.node_stalled[i],
                    starved: self.node_starved[i],
                    causes: cause_map,
                },
            );
        }
        let mut channels: Vec<(String, u64)> = self
            .chan_lost
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(c, &n)| (chan_names[c].clone(), n))
            .collect();
        channels.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut chains: Vec<StallChain> = self
            .chains
            .into_iter()
            .map(|((cause, path), lost)| StallChain {
                cause: STALL_CAUSES[cause as usize],
                path: path.iter().map(|&c| chan_names[c as usize].clone()).collect(),
                lost_cycles: lost,
            })
            .collect();
        chains.sort_by(|a, b| b.lost_cycles.cmp(&a.lost_cycles).then_with(|| a.path.cmp(&b.path)));
        StallReport {
            stall_cycles,
            starved_cycles,
            by_node,
            channels,
            chains,
            dropped_chains: self.dropped_chains,
        }
    }
}
