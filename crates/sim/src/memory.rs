//! The memory model backing Load/Store ports.
//!
//! Arrays are flat vectors of values. Loads have a fixed pipeline latency;
//! a free-running Store port commits in *arrival order*, while arrays that
//! codegen routes through a store queue ([`CompKind::StoreQueue`]) commit in
//! *program order*, serialised by the queue's sequence stream. Incorrectly
//! reordered circuits (the bicg bug of §6.2) therefore show up as wrong
//! memory contents on the free-running path, not as a simulator error.
//!
//! [`CompKind::StoreQueue`]: graphiti_ir::CompKind::StoreQueue

use graphiti_ir::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Memory contents: array name → flattened values.
pub type Memory = BTreeMap<String, Vec<Value>>;

/// Errors raised by memory accesses during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The named array does not exist.
    UnknownArray(String),
    /// Access past the end of an array.
    OutOfBounds(String, i64),
    /// A non-integer address reached a memory port.
    BadAddress(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            MemError::OutOfBounds(a, i) => write!(f, "index {i} out of bounds for `{a}`"),
            MemError::BadAddress(a) => write!(f, "non-integer address for `{a}`"),
        }
    }
}

impl std::error::Error for MemError {}

/// Reads `array[addr]`.
///
/// # Errors
///
/// Fails on unknown arrays, out-of-bounds indices, or non-integer addresses.
pub fn mem_read(mem: &Memory, array: &str, addr: &Value) -> Result<Value, MemError> {
    let i = addr.untag().1.as_int().ok_or_else(|| MemError::BadAddress(array.to_string()))?;
    let arr = mem.get(array).ok_or_else(|| MemError::UnknownArray(array.to_string()))?;
    arr.get(i as usize).cloned().ok_or_else(|| MemError::OutOfBounds(array.to_string(), i))
}

/// Writes `array[addr] = value` (tags stripped).
///
/// # Errors
///
/// Fails on unknown arrays, out-of-bounds indices, or non-integer addresses.
pub fn mem_write(
    mem: &mut Memory,
    array: &str,
    addr: &Value,
    value: &Value,
) -> Result<(), MemError> {
    let i = addr.untag().1.as_int().ok_or_else(|| MemError::BadAddress(array.to_string()))?;
    let arr = mem.get_mut(array).ok_or_else(|| MemError::UnknownArray(array.to_string()))?;
    let slot =
        arr.get_mut(i as usize).ok_or_else(|| MemError::OutOfBounds(array.to_string(), i))?;
    *slot = value.untag().1.clone();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem: Memory = [("a".to_string(), vec![Value::Int(0); 4])].into_iter().collect();
        mem_write(&mut mem, "a", &Value::Int(2), &Value::Int(9)).unwrap();
        assert_eq!(mem_read(&mem, "a", &Value::Int(2)).unwrap(), Value::Int(9));
    }

    #[test]
    fn tagged_addresses_and_values_are_stripped() {
        let mut mem: Memory = [("a".to_string(), vec![Value::Int(0); 4])].into_iter().collect();
        mem_write(
            &mut mem,
            "a",
            &Value::tagged(3, Value::Int(1)),
            &Value::tagged(3, Value::Int(7)),
        )
        .unwrap();
        assert_eq!(mem["a"][1], Value::Int(7));
        assert_eq!(mem_read(&mem, "a", &Value::tagged(9, Value::Int(1))).unwrap(), Value::Int(7));
    }

    #[test]
    fn errors_are_precise() {
        let mem: Memory = [("a".to_string(), vec![Value::Int(0)])].into_iter().collect();
        assert_eq!(mem_read(&mem, "zz", &Value::Int(0)), Err(MemError::UnknownArray("zz".into())));
        assert_eq!(mem_read(&mem, "a", &Value::Int(5)), Err(MemError::OutOfBounds("a".into(), 5)));
        assert_eq!(mem_read(&mem, "a", &Value::Bool(true)), Err(MemError::BadAddress("a".into())));
    }

    #[test]
    fn store_path_errors_match_the_load_path() {
        let mut mem: Memory = [("a".to_string(), vec![Value::Int(0); 2])].into_iter().collect();
        // A negative address wraps to a huge usize and must surface as
        // out-of-bounds with the *signed* index, exactly like a read.
        assert_eq!(
            mem_write(&mut mem, "a", &Value::Int(-1), &Value::Int(7)),
            Err(MemError::OutOfBounds("a".into(), -1))
        );
        assert_eq!(
            mem_read(&mem, "a", &Value::Int(-1)),
            Err(MemError::OutOfBounds("a".into(), -1))
        );
        assert_eq!(
            mem_write(&mut mem, "zz", &Value::Int(0), &Value::Int(7)),
            Err(MemError::UnknownArray("zz".into()))
        );
        assert_eq!(
            mem_write(&mut mem, "a", &Value::Unit, &Value::Int(7)),
            Err(MemError::BadAddress("a".into()))
        );
        // The failed writes left the array untouched.
        assert_eq!(mem["a"], vec![Value::Int(0); 2]);
    }
}
