//! Static timing analysis (the post-place-and-route clock-period substitute).
//!
//! Each component contributes either a pass-through combinational delay or,
//! for sequential components (pipelined functional units, opaque buffers,
//! Init registers, the Tagger), an input-side (setup + input logic) and
//! output-side (clock-to-q + output logic) delay. The clock period is the
//! longest register-to-register combinational path; buffer placement must
//! have cut every cycle first.
//!
//! The constants are calibrated so elastic circuits land in the 5–12 ns
//! range of the paper's Table 2 on a Kintex-7-class model; tagged circuits
//! come out slower because the Tagger's tag-allocation logic and the Merge
//! on the loop path are slow components, mirroring the paper's observation.

use crate::place::has_combinational_cycle;
use graphiti_ir::{Attachment, CompKind, Endpoint, ExprHigh, NodeId, Op, PureFn};
use std::collections::BTreeMap;
use std::fmt;

/// Per-component timing characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeTiming {
    /// Pass-through combinational delay (ns).
    Comb(f64),
    /// Sequential: `(input-side, output-side)` delays (ns).
    Seq(f64, f64),
}

/// Errors from timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The circuit still has a cycle with no sequential element.
    CombinationalLoop,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::CombinationalLoop => {
                write!(f, "combinational loop: run buffer placement first")
            }
        }
    }
}

impl std::error::Error for TimingError {}

fn comb_op_delay(op: Op) -> f64 {
    match op {
        Op::AddI | Op::SubI => 1.9,
        Op::LtI | Op::GeI | Op::EqI => 1.6,
        Op::NeZero => 0.9,
        Op::Not | Op::And | Op::Or => 0.4,
        Op::Select => 1.0,
        // Pipelined ops are sequential and never reach here.
        _ => 2.0,
    }
}

/// The timing characteristics of a component in an elastic circuit.
pub fn elastic_timing(kind: &CompKind) -> NodeTiming {
    use NodeTiming::{Comb, Seq};
    match kind {
        CompKind::Fork { ways } => Comb(0.25 + 0.05 * (*ways as f64)),
        CompKind::Join => Comb(0.6),
        CompKind::Split => Comb(0.4),
        CompKind::Mux => Comb(1.15),
        CompKind::Branch => Comb(0.95),
        CompKind::Merge => Comb(1.3),
        CompKind::Init { .. } => Seq(0.5, 0.6),
        CompKind::Buffer { transparent: true, .. } => Comb(0.5),
        CompKind::Buffer { transparent: false, .. } => Seq(0.7, 0.7),
        CompKind::Sink => Comb(0.0),
        CompKind::Constant { .. } => Comb(0.2),
        CompKind::Operator { op } => match op {
            Op::AddF | Op::SubF => Seq(2.9, 2.7),
            Op::MulF => Seq(2.8, 2.6),
            Op::DivF => Seq(3.1, 2.9),
            Op::GeF | Op::LtF => Seq(2.4, 2.2),
            Op::IToF => Seq(2.2, 2.0),
            Op::MulI => Seq(2.0, 1.8),
            Op::Mod | Op::DivI => Seq(3.3, 3.0),
            comb => Comb(comb_op_delay(*comb)),
        },
        CompKind::Pure { func } => {
            if crate::sim::purefn_latency(func, 2) > 0 {
                Seq(2.9, 2.7)
            } else {
                Comb(0.8 + 0.9 * purefn_comb_ops(func) as f64)
            }
        }
        CompKind::TaggerUntagger { tags } => {
            // Tag allocation compares against the free pool and the reorder
            // buffer does an associative lookup; wider pools are slower, and
            // this path cannot be pipelined away — it is why tagged circuits
            // clock slower in the paper's Table 2.
            let w = (*tags as f64).log2().max(1.0);
            Seq(3.4 + 0.55 * w, 3.2 + 0.55 * w)
        }
        CompKind::Load { .. } => Seq(1.9, 2.0),
        CompKind::Store { .. } => Seq(1.7, 0.6),
        CompKind::StoreQueue { body_plan, epi_plan, .. } => {
            // The disambiguation CAM compares a load address against every
            // older store entry; wider windows are slower, like the
            // tagger's associative reorder lookup.
            let w = ((body_plan.len() + epi_plan.len()) as f64).max(1.0).log2().max(1.0);
            Seq(2.6 + 0.45 * w, 2.4 + 0.45 * w)
        }
    }
}

/// Is the component a sequential element under a timing table?
pub fn is_sequential(kind: &CompKind, table: &dyn Fn(&CompKind) -> NodeTiming) -> bool {
    matches!(table(kind), NodeTiming::Seq(_, _))
}

/// Estimated pure-function combinational size (used in [`elastic_timing`]).
pub fn purefn_comb_ops(f: &PureFn) -> usize {
    match f {
        PureFn::Comp(a, b) | PureFn::Par(a, b) => purefn_comb_ops(a) + purefn_comb_ops(b),
        PureFn::Op(_) => 1,
        _ => 0,
    }
}

/// Computes the clock period of a circuit under a timing table.
///
/// # Errors
///
/// Fails if the circuit has a combinational loop.
pub fn clock_period(
    g: &ExprHigh,
    table: &dyn Fn(&CompKind) -> NodeTiming,
) -> Result<f64, TimingError> {
    let seq_check = |k: &CompKind| is_sequential(k, table);
    if has_combinational_cycle(g, &seq_check) {
        return Err(TimingError::CombinationalLoop);
    }

    // arrival[n]: longest combinational path arriving at node n's inputs.
    let mut arrival: BTreeMap<NodeId, f64> = BTreeMap::new();
    // Topological processing of the combinational subgraph: repeat sweeps
    // until a fixpoint (the subgraph is acyclic, so |V| sweeps suffice).
    let nodes: Vec<(NodeId, CompKind)> = g.nodes().map(|(n, k)| (n.clone(), k.clone())).collect();
    for (n, _) in &nodes {
        arrival.insert(n.clone(), 0.0);
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > nodes.len() + 2 {
            return Err(TimingError::CombinationalLoop);
        }
        for (n, kind) in &nodes {
            let (ins, _) = kind.interface();
            let mut best: f64 = 0.0;
            for p in ins {
                if let Some(Attachment::Wire(src)) = g.driver(&Endpoint::new(n.clone(), p)) {
                    let src_kind = g.kind(&src.node).expect("node");
                    let contrib = match table(src_kind) {
                        NodeTiming::Seq(_, out_side) => out_side,
                        NodeTiming::Comb(d) => arrival[&src.node] + d,
                    };
                    best = best.max(contrib);
                }
            }
            if best > arrival[n] + 1e-12 {
                arrival.insert(n.clone(), best);
                changed = true;
            }
        }
    }

    // CP: paths terminate at sequential inputs (arrival + in-side delay) or
    // at external outputs (arrival + comb delay of the final node).
    let mut cp: f64 = 1.0;
    for (n, kind) in &nodes {
        match table(kind) {
            NodeTiming::Seq(in_side, _) => cp = cp.max(arrival[n] + in_side),
            NodeTiming::Comb(d) => {
                // If this node drives an external output, close the path.
                let (_, outs) = kind.interface();
                for p in outs {
                    if matches!(
                        g.consumer(&Endpoint::new(n.clone(), p)),
                        Some(Attachment::External(_))
                    ) {
                        cp = cp.max(arrival[n] + d);
                    }
                }
            }
        }
    }
    Ok(cp)
}

/// Convenience: clock period under the elastic timing table.
///
/// # Errors
///
/// See [`clock_period`].
pub fn elastic_clock_period(g: &ExprHigh) -> Result<f64, TimingError> {
    clock_period(g, &elastic_timing)
}

/// Combinational arrival time at every node's inputs under a timing table
/// (the DP of [`clock_period`], exposed for timing-driven buffer
/// placement).
///
/// # Errors
///
/// Fails if the circuit has a combinational loop.
pub fn arrival_times(
    g: &ExprHigh,
    table: &dyn Fn(&CompKind) -> NodeTiming,
) -> Result<BTreeMap<NodeId, f64>, TimingError> {
    let seq_check = |k: &CompKind| is_sequential(k, table);
    if has_combinational_cycle(g, &seq_check) {
        return Err(TimingError::CombinationalLoop);
    }
    let nodes: Vec<(NodeId, CompKind)> = g.nodes().map(|(n, k)| (n.clone(), k.clone())).collect();
    let mut arrival: BTreeMap<NodeId, f64> = BTreeMap::new();
    for (n, _) in &nodes {
        arrival.insert(n.clone(), 0.0);
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > nodes.len() + 2 {
            return Err(TimingError::CombinationalLoop);
        }
        for (n, kind) in &nodes {
            let (ins, _) = kind.interface();
            let mut best: f64 = 0.0;
            for p in ins {
                if let Some(Attachment::Wire(src)) = g.driver(&Endpoint::new(n.clone(), p)) {
                    let src_kind = g.kind(&src.node).expect("node");
                    let contrib = match table(src_kind) {
                        NodeTiming::Seq(_, out_side) => out_side,
                        NodeTiming::Comb(d) => arrival[&src.node] + d,
                    };
                    best = best.max(contrib);
                }
            }
            if best > arrival[n] + 1e-12 {
                arrival.insert(n.clone(), best);
                changed = true;
            }
        }
    }
    Ok(arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphiti_ir::ep;

    #[test]
    fn chain_delay_accumulates() {
        // buffer(seq) -> mux -> branch -> buffer(seq):
        // CP = 0.7 (out) + 1.15 + 0.95 + 0.7 (in) = 3.5
        let mut g = ExprHigh::new();
        g.add_node("b1", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
        g.add_node("m", CompKind::Mux).unwrap();
        g.add_node("br", CompKind::Branch).unwrap();
        g.add_node("b2", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
        g.expose_input("c", ep("m", "cond")).unwrap();
        g.expose_input("x", ep("b1", "in")).unwrap();
        g.expose_input("y", ep("m", "f")).unwrap();
        g.expose_input("c2", ep("br", "cond")).unwrap();
        g.connect(ep("b1", "out"), ep("m", "t")).unwrap();
        g.connect(ep("m", "out"), ep("br", "in")).unwrap();
        g.connect(ep("br", "t"), ep("b2", "in")).unwrap();
        g.expose_output("o1", ep("br", "f")).unwrap();
        g.expose_output("o2", ep("b2", "out")).unwrap();
        let cp = elastic_clock_period(&g).unwrap();
        assert!((cp - 3.5).abs() < 1e-9, "cp = {cp}");
    }

    #[test]
    fn sequential_units_cut_paths() {
        // mux -> fadd (seq) -> branch: two short paths, not one long one.
        let mut g = ExprHigh::new();
        g.add_node("m", CompKind::Mux).unwrap();
        g.add_node("a", CompKind::Operator { op: Op::AddF }).unwrap();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.expose_input("c", ep("m", "cond")).unwrap();
        g.expose_input("x", ep("m", "t")).unwrap();
        g.expose_input("y", ep("m", "f")).unwrap();
        g.connect(ep("m", "out"), ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("a", "in0")).unwrap();
        g.connect(ep("f", "out1"), ep("a", "in1")).unwrap();
        g.expose_output("o", ep("a", "out")).unwrap();
        let cp = elastic_clock_period(&g).unwrap();
        // Path: mux(1.15) + fork(0.35) + fadd.in(2.9) = 4.4
        assert!((cp - 4.4).abs() < 1e-9, "cp = {cp}");
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let mut g = ExprHigh::new();
        g.add_node("m", CompKind::Merge).unwrap();
        g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
        g.add_node("k", CompKind::Sink).unwrap();
        g.expose_input("x", ep("m", "in0")).unwrap();
        g.connect(ep("m", "out"), ep("f", "in")).unwrap();
        g.connect(ep("f", "out0"), ep("k", "in")).unwrap();
        g.connect(ep("f", "out1"), ep("m", "in1")).unwrap();
        assert_eq!(elastic_clock_period(&g), Err(TimingError::CombinationalLoop));
        let (g2, _) = crate::place::place_buffers(&g);
        assert!(elastic_clock_period(&g2).is_ok());
    }

    #[test]
    fn tagger_slows_the_clock() {
        let mut small = ExprHigh::new();
        small.add_node("t", CompKind::TaggerUntagger { tags: 4 }).unwrap();
        small.expose_input("a", ep("t", "in")).unwrap();
        small.expose_input("b", ep("t", "retag")).unwrap();
        small.expose_output("c", ep("t", "tagged")).unwrap();
        small.expose_output("d", ep("t", "out")).unwrap();
        let mut big = small.clone();
        if big.kind("t").is_some() {
            big.remove_node("t").unwrap();
            big.add_node("t", CompKind::TaggerUntagger { tags: 64 }).unwrap();
            big.expose_input("a", ep("t", "in")).unwrap();
            big.expose_input("b", ep("t", "retag")).unwrap();
            big.expose_output("c", ep("t", "tagged")).unwrap();
            big.expose_output("d", ep("t", "out")).unwrap();
        }
        let cp_small = elastic_clock_period(&small).unwrap();
        let cp_big = elastic_clock_period(&big).unwrap();
        assert!(cp_big > cp_small);
    }
}
