//! A full benchmark through all four flows of the paper's evaluation.
//!
//! Runs matvec through DF-IO, DF-OoO, GRAPHITI, and the Vericert-style
//! static baseline, printing a miniature of Table 2's row (cycles, clock
//! period, execution time) plus area and correctness.
//!
//! Run with: `cargo run --release --example matvec_pipeline`

use graphiti::bench::{evaluate, suite, Flow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = suite::matvec(16);
    println!("benchmark: {} (16x16 matrix-vector product, 24 tags)\n", program.name);

    let r = evaluate(&program)?;
    println!(
        "{:<10} {:>9} {:>9} {:>13} {:>8} {:>8} {:>5} {:>8}",
        "flow", "cycles", "CP (ns)", "exec (ns)", "LUT", "FF", "DSP", "correct"
    );
    for flow in [Flow::DfIo, Flow::DfOoo, Flow::Graphiti, Flow::Vericert] {
        let m = &r.flows[&flow];
        println!(
            "{:<10} {:>9} {:>9.2} {:>13.0} {:>8} {:>8} {:>5} {:>8}",
            flow.to_string(),
            m.cycles,
            m.clock_period_ns,
            m.exec_time_ns,
            m.lut,
            m.ff,
            m.dsp,
            m.correct
        );
    }
    println!(
        "\nGRAPHITI pipeline: {} rewrites in {:.3}s, refused = {}",
        r.rewrites, r.rewrite_seconds, r.refused
    );
    let io = &r.flows[&Flow::DfIo];
    let gr = &r.flows[&Flow::Graphiti];
    println!(
        "cycle speedup vs DF-IO: {:.2}x (paper reports ~8x for matvec)",
        io.cycles as f64 / gr.cycles as f64
    );
    Ok(())
}
