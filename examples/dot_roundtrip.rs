//! The tool-flow interface of the paper's Fig. 1: dot graph in, rewritten
//! dot graph out.
//!
//! Parses a Dynamatic-style dot description of a sequential GCD loop,
//! applies the out-of-order loop rewrite through the engine, and prints the
//! rewritten circuit back as dot — exactly the role of the command-line
//! program extracted from the Lean development (§6.3).
//!
//! Run with: `cargo run --release --example dot_roundtrip`

use graphiti::prelude::*;

const SEQUENTIAL_LOOP: &str = r#"
digraph gcd_loop {
  entry [type="entry"];
  exit  [type="exit"];
  mux   [type="mux"];
  body  [type="pure" func="comp(parf(id,op:nez),comp(parf(comp(parf(snd,op:mod),dup),op:mod),dup))"];
  split [type="split"];
  br    [type="branch"];
  fork  [type="fork" ways="2"];
  init  [type="init" initial="false"];
  entry -> mux  [to="f"];
  mux   -> body [from="out" to="in"];
  body  -> split [from="out" to="in"];
  split -> br   [from="out0" to="in"];
  split -> fork [from="out1" to="in"];
  fork  -> br   [from="out0" to="cond"];
  fork  -> init [from="out1" to="in"];
  init  -> mux  [from="out" to="cond"];
  br    -> mux  [from="t" to="t"];
  br    -> exit [from="f"];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = parse_dot(SEQUENTIAL_LOOP)?;
    g.validate()?;
    println!("// parsed {} components from dot\n", g.node_count());

    let mut engine = Engine::new();
    let rewrite = catalog::ooo::loop_ooo(8);
    let g2 = engine.apply_first(&g, &rewrite)?.expect("the loop shape matches");
    println!("// applied `{}`; printing the rewritten circuit:\n", rewrite.name);
    let printed = print_dot(&g2);
    println!("{printed}");

    // The printed dot parses back to the same graph.
    let reparsed = parse_dot(&printed)?;
    assert_eq!(g2, reparsed);
    println!("\n// roundtrip OK: printed dot parses back identically");
    Ok(())
}
