//! Quickstart: make the paper's GCD loop execute out of order.
//!
//! Compiles the §2 running example (an outer loop computing GCDs of array
//! pairs) to an elastic dataflow circuit, runs the verified five-phase
//! pipeline, and simulates both circuits to show the speedup — with
//! identical results.
//!
//! Run with: `cargo run --release --example quickstart`

use graphiti::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // for i in 0..12 { (a, b) = (arr1[i], arr2[i]);
    //                  do { (a, b) = (b, a % b) } while b != 0;
    //                  result[i] = a; }
    let program = graphiti::bench::suite::gcd(12);
    let expected = run_program(&program)?;

    let compiled = compile(&program)?;
    let kernel = &compiled.kernels[0];
    println!(
        "compiled `{}`: {} dataflow components, inner loop has {} Muxes",
        kernel.name,
        kernel.graph.node_count(),
        kernel.inner_muxes.len()
    );

    // The verified pipeline: normalize, eliminate, pure-generate, apply the
    // out-of-order loop rewrite, re-expand the body.
    let opts = PipelineOptions { tags: 8, ..Default::default() };
    let (optimized, report) = optimize_loop(&kernel.graph, &kernel.inner_init, &opts)?;
    println!(
        "pipeline: transformed = {}, {} rewrites applied (pure generation {} the oracle)",
        report.transformed,
        report.rewrites,
        if report.pure_by_rewrites { "did not need" } else { "used" }
    );

    let feeds = [("start".to_string(), vec![Value::Unit])].into_iter().collect();
    let (seq, _) = place_buffers(&kernel.graph);
    let (ooo, _) = place_buffers(&optimized);
    let a = simulate(&seq, &feeds, program.arrays.clone(), SimConfig::default())?;
    let b = simulate(&ooo, &feeds, program.arrays.clone(), SimConfig::default())?;

    assert_eq!(a.memory["result"], expected["result"], "sequential circuit is correct");
    assert_eq!(b.memory["result"], expected["result"], "out-of-order circuit is correct");
    println!("results: {:?}", b.memory["result"].iter().map(|v| v.to_string()).collect::<Vec<_>>());
    println!(
        "cycles: {} sequential -> {} out-of-order ({:.2}x speedup)",
        a.cycles,
        b.cycles,
        a.cycles as f64 / b.cycles as f64
    );
    Ok(())
}
