//! Defining and checking a rewrite.
//!
//! Shows the verification story of the paper at work in the executable
//! setting: a *correct* rewrite (the canonical out-of-order loop rewrite of
//! Fig. 3d) passes the engine's checked mode, while a deliberately *wrong*
//! variant — a Merge loop **without** the Tagger/Untagger, which can emit
//! results out of program order — is rejected by the bounded refinement
//! check with a counterexample trace.
//!
//! Run with: `cargo run --release --example verified_rewrite`

use graphiti::prelude::*;
use graphiti::rewrite::{Match, Replacement, RewriteError};
use graphiti_ir::GraphError;
use std::collections::BTreeMap;

/// The canonical sequential loop of Fig. 3d (lhs), with a tiny integer body
/// `f(x) = (x - 2, x - 2 >= 1)`, chosen so different inputs take different
/// iteration counts *and* exit with distinguishable values — a reordering
/// of loop executions is then visible in the traces.
fn countdown_loop() -> Result<ExprHigh, GraphError> {
    let step =
        PureFn::comp(PureFn::Op(Op::SubI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(2))));
    let continue_cond =
        PureFn::comp(PureFn::Op(Op::GeI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(1))));
    let f = PureFn::comp(PureFn::par(PureFn::Id, continue_cond), PureFn::comp(PureFn::Dup, step));
    let mut g = ExprHigh::new();
    g.add_node("mux", CompKind::Mux)?;
    g.add_node("body", CompKind::Pure { func: f })?;
    g.add_node("split", CompKind::Split)?;
    g.add_node("br", CompKind::Branch)?;
    g.add_node("fork", CompKind::Fork { ways: 2 })?;
    g.add_node("init", CompKind::Init { initial: false })?;
    g.connect(ep("mux", "out"), ep("body", "in"))?;
    g.connect(ep("body", "out"), ep("split", "in"))?;
    g.connect(ep("split", "out0"), ep("br", "in"))?;
    g.connect(ep("split", "out1"), ep("fork", "in"))?;
    g.connect(ep("fork", "out0"), ep("br", "cond"))?;
    g.connect(ep("fork", "out1"), ep("init", "in"))?;
    g.connect(ep("init", "out"), ep("mux", "cond"))?;
    g.connect(ep("br", "t"), ep("mux", "t"))?;
    g.expose_input("entry", ep("mux", "f"))?;
    g.expose_output("exit", ep("br", "f"))?;
    Ok(g)
}

/// An *unsound* variant of the loop rewrite: Mux -> Merge with no
/// Tagger/Untagger. Results can overtake each other and leave the loop out
/// of program order — new behaviours the sequential loop does not have.
fn unsound_loop_ooo() -> Rewrite {
    let sound = catalog::ooo::loop_ooo(2);
    Rewrite::new(
        "loop-ooo-unsound",
        true, // claims to be verified: checked mode will catch the lie
        move |g| sound.matches(g),
        move |g, m: &Match| {
            let body_func = match g.kind(m.node("body")) {
                Some(CompKind::Pure { func }) => func.clone(),
                _ => return Err(RewriteError::BuilderFailed("body is not pure".into())),
            };
            let mut frag = ExprHigh::new();
            let build = || -> Result<ExprHigh, GraphError> {
                let mut fr = ExprHigh::new();
                fr.add_node("merge", CompKind::Merge)?;
                fr.add_node("body", CompKind::Pure { func: body_func.clone() })?;
                fr.add_node("split", CompKind::Split)?;
                fr.add_node("br", CompKind::Branch)?;
                fr.connect(ep("merge", "out"), ep("body", "in"))?;
                fr.connect(ep("body", "out"), ep("split", "in"))?;
                fr.connect(ep("split", "out0"), ep("br", "in"))?;
                fr.connect(ep("split", "out1"), ep("br", "cond"))?;
                fr.connect(ep("br", "t"), ep("merge", "in1"))?;
                fr.expose_input("entry", ep("merge", "in0"))?;
                fr.expose_output("exit", ep("br", "f"))?;
                Ok(fr)
            };
            frag.clone_from(&build().map_err(RewriteError::Graph)?);
            let mut ins = BTreeMap::new();
            ins.insert("entry".to_string(), ep(m.node("mux").clone(), "f"));
            let mut outs = BTreeMap::new();
            outs.insert("exit".to_string(), ep(m.node("branch").clone(), "f"));
            Ok(Replacement::Subgraph { graph: frag, boundary_ins: ins, boundary_outs: outs })
        },
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = countdown_loop()?;
    // Inputs 2 (one iteration, exits 0) and 3 (two iterations, exits -1).
    let cfg = RefineConfig {
        domain: vec![Value::Int(2), Value::Int(3)],
        max_depth: 20,
        max_states: 400_000,
        ..Default::default()
    };

    // The sound rewrite passes the checked engine.
    let mut engine = Engine::checked(cfg.clone());
    let sound = catalog::ooo::loop_ooo(2);
    let g2 = engine.apply_first(&g, &sound)?.expect("loop matches");
    let verdict = engine.log[0].verdict.clone().expect("checked");
    println!("sound loop-ooo: applied, checker verdict = {verdict:?}");
    assert!(verdict.is_ok());
    g2.validate()?;

    // The unsound variant is rejected with a counterexample trace.
    let mut engine = Engine::checked(cfg);
    match engine.apply_first(&g, &unsound_loop_ooo()) {
        Err(RewriteError::RefinementViolated { rewrite, trace }) => {
            println!("unsound `{rewrite}` rejected; counterexample:");
            for e in &trace {
                println!("  {e}");
            }
        }
        other => panic!("expected a refinement violation, got {other:?}"),
    }
    Ok(())
}
