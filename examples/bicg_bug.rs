//! Reproducing the paper's bicg finding (§6.2).
//!
//! The bicg kernel stores into `s[j]` *inside* its inner loop. The verified
//! pipeline refuses to make that loop out-of-order — pure generation cannot
//! turn a Store into a Pure component — while the unverified DF-OoO
//! transformation proceeds and lets stores from different outer iterations
//! commit out of program order. With `s[j] += r[i] * A[i][j]`, additions
//! commute, so to make the corruption *visible* this example uses a
//! non-commutative update. The refusal is exactly how the paper's authors
//! discovered the bug in the original compilation scheme.
//!
//! Run with: `cargo run --release --example bicg_bug`

use graphiti::prelude::*;

/// bicg-like kernel, but with a non-commutative inner store
/// `s[j] = s[j] * 0.5 + A[i][j]`, so commit order is observable.
fn order_sensitive_bicg(n: i64) -> Program {
    let inner = InnerLoop {
        vars: vec![
            ("j".into(), Expr::int(0)),
            ("q".into(), Expr::f64(0.0)),
            ("off".into(), Expr::muli(Expr::var("i"), Expr::int(n))),
        ],
        update: vec![
            ("j".into(), Expr::addi(Expr::var("j"), Expr::int(1))),
            (
                "q".into(),
                Expr::addf(
                    Expr::var("q"),
                    Expr::load("A", Expr::addi(Expr::var("off"), Expr::var("j"))),
                ),
            ),
            ("off".into(), Expr::var("off")),
        ],
        cond: Expr::bin(Op::LtI, Expr::var("j"), Expr::int(n)),
        effects: vec![StoreStmt {
            array: "s".into(),
            index: Expr::var("j"),
            value: Expr::addf(
                Expr::mulf(Expr::load("s", Expr::var("j")), Expr::f64(0.5)),
                Expr::load("A", Expr::addi(Expr::var("off"), Expr::var("j"))),
            ),
        }],
    };
    Program {
        name: "bicg-ordered".into(),
        arrays: [
            ("A".to_string(), (0..n * n).map(|k| Value::from_f64((k % 5) as f64 + 1.0)).collect()),
            ("s".to_string(), vec![Value::from_f64(0.0); n as usize]),
            ("q".to_string(), vec![Value::from_f64(0.0); n as usize]),
        ]
        .into_iter()
        .collect(),
        kernels: vec![OuterLoop {
            var: "i".into(),
            trip: n,
            inner,
            epilogue: vec![StoreStmt {
                array: "q".into(),
                index: Expr::var("i"),
                value: Expr::var("q"),
            }],
            ooo_tags: Some(8),
        }],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = order_sensitive_bicg(8);
    let expected = run_program(&program)?;
    let compiled = compile(&program)?;
    let kernel = &compiled.kernels[0];
    let opts = PipelineOptions { tags: 8, ..Default::default() };

    // The verified pipeline refuses.
    let (untouched, report) = optimize_loop(&kernel.graph, &kernel.inner_init, &opts)?;
    println!("GRAPHITI: transformed = {}", report.transformed);
    match &report.refusal {
        Some(Refusal::ImpureBody(msg)) => println!("GRAPHITI refusal: {msg}"),
        other => println!("unexpected refusal state: {other:?}"),
    }
    assert_eq!(&untouched, &kernel.graph, "refusal leaves the circuit unchanged (= DF-IO)");

    // The unverified transformation proceeds.
    let dfooo = dfooo_loop(&kernel.graph, &kernel.inner_init, &opts)?;
    println!("DF-OoO: transformed anyway (no purity check)");

    let feeds = [("start".to_string(), vec![Value::Unit])].into_iter().collect();
    let (seq, _) = place_buffers(&untouched);
    let (ooo, _) = place_buffers(&dfooo);
    let a = simulate(&seq, &feeds, program.arrays.clone(), SimConfig::default())?;
    let b = simulate(&ooo, &feeds, program.arrays.clone(), SimConfig::default())?;

    println!("GRAPHITI/DF-IO s[] correct: {}", a.memory["s"] == expected["s"]);
    println!("DF-OoO      s[] correct: {}", b.memory["s"] == expected["s"]);
    if b.memory["s"] != expected["s"] {
        let i = expected["s"]
            .iter()
            .zip(&b.memory["s"])
            .position(|(x, y)| x != y)
            .expect("some element differs");
        println!(
            "  first mismatch at s[{i}]: expected {}, DF-OoO produced {}",
            expected["s"][i], b.memory["s"][i]
        );
        println!("  (stores from overlapping outer iterations committed out of order)");
    }
    Ok(())
}
