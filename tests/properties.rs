//! Property-based tests on the core data structures and invariants:
//! DOT interchange roundtrips, lowering/lifting roundtrips over random
//! circuits, e-graph simplification soundness, and simulator determinism.

use graphiti::prelude::*;
use graphiti_ir::{lift, lower, lower_grouped, parse_value, print_value, NodeId};
use graphiti_rewrite::simplify;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------- strategies ----------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100i32..100).prop_map(|x| Value::from_f64(x as f64 / 4.0)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            (0u32..8, inner).prop_map(|(t, v)| Value::tagged(t, v)),
        ]
    })
}

/// Structural pure functions that are total on nested pairs of the right
/// shape; evaluation failures are allowed as long as simplification does
/// not change defined results.
fn purefn_strategy() -> impl Strategy<Value = PureFn> {
    let leaf = prop_oneof![
        Just(PureFn::Id),
        Just(PureFn::Swap),
        Just(PureFn::Dup),
        Just(PureFn::Fst),
        Just(PureFn::Snd),
        Just(PureFn::AssocL),
        Just(PureFn::AssocR),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PureFn::Comp(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| PureFn::Par(Box::new(a), Box::new(b))),
        ]
    })
}

/// A random linear pipeline circuit: alternating buffers, forks feeding
/// joins, and unary ops — always a valid complete graph with one input and
/// one output.
fn pipeline_graph_strategy() -> impl Strategy<Value = ExprHigh> {
    proptest::collection::vec(0u8..4, 1..8).prop_map(|stages| {
        let mut g = ExprHigh::new();
        let mut prev: Option<graphiti_ir::Endpoint> = None;
        for (i, kind) in stages.iter().enumerate() {
            let (name, in_port, out_port) = match kind {
                0 => {
                    let n = format!("buf{i}");
                    g.add_node(&n, CompKind::Buffer { slots: 2, transparent: i % 2 == 0 }).unwrap();
                    (n, "in", "out")
                }
                1 => {
                    // fork -> join diamond
                    let f = format!("fork{i}");
                    let j = format!("join{i}");
                    g.add_node(&f, CompKind::Fork { ways: 2 }).unwrap();
                    g.add_node(&j, CompKind::Join).unwrap();
                    g.connect(ep(f.clone(), "out0"), ep(j.clone(), "in0")).unwrap();
                    g.connect(ep(f.clone(), "out1"), ep(j.clone(), "in1")).unwrap();
                    // The diamond consumes at fork.in and produces at join.out;
                    // wire it via a following Pure that projects.
                    let p = format!("proj{i}");
                    g.add_node(&p, CompKind::Pure { func: PureFn::Fst }).unwrap();
                    g.connect(ep(j.clone(), "out"), ep(p.clone(), "in")).unwrap();
                    (format!("{f}\u{0}{p}"), "in", "out")
                }
                2 => {
                    let n = format!("neg{i}");
                    g.add_node(&n, CompKind::Operator { op: Op::NeZero }).unwrap();
                    (n, "in0", "out")
                }
                _ => {
                    let n = format!("pure{i}");
                    g.add_node(&n, CompKind::Pure { func: PureFn::Dup }).unwrap();
                    (n, "in", "out")
                }
            };
            // Resolve composite names (fork diamond).
            let (head, tail) = match name.split_once('\u{0}') {
                Some((a, b)) => (a.to_string(), b.to_string()),
                None => (name.clone(), name.clone()),
            };
            match prev {
                None => g.expose_input("x", ep(head, in_port)).unwrap(),
                Some(p) => g.connect(p, ep(head, in_port)).unwrap(),
            }
            prev = Some(ep(tail, out_port));
        }
        g.expose_output("y", prev.expect("nonempty")).unwrap();
        g
    })
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_dot_roundtrip(v in value_strategy()) {
        prop_assert_eq!(parse_value(&print_value(&v)), Ok(v));
    }

    #[test]
    fn purefn_dot_roundtrip(f in purefn_strategy()) {
        let printed = graphiti_ir::print_purefn(&f);
        prop_assert_eq!(graphiti_ir::parse_purefn(&printed), Ok(f));
    }

    #[test]
    fn egraph_simplification_preserves_defined_results(
        f in purefn_strategy(),
        v in value_strategy(),
    ) {
        if let Ok(expected) = f.eval(&v) {
            let s = simplify(&f, 6);
            prop_assert_eq!(s.eval(&v), Ok(expected), "f = {}, s = {}", f, simplify(&f, 6));
        }
    }

    #[test]
    fn egraph_never_grows_terms(f in purefn_strategy()) {
        let s = simplify(&f, 6);
        prop_assert!(s.size() <= f.size(), "{} -> {}", f, s);
    }

    #[test]
    fn dot_roundtrip_on_random_circuits(g in pipeline_graph_strategy()) {
        g.validate().unwrap();
        let printed = print_dot(&g);
        let g2 = parse_dot(&printed).unwrap();
        prop_assert_eq!(&g, &g2);
    }

    #[test]
    fn lower_lift_roundtrip_on_random_circuits(g in pipeline_graph_strategy()) {
        let lowered = lower(&g).unwrap();
        let g2 = lift(&lowered).unwrap();
        prop_assert_eq!(&g, &g2);
    }

    #[test]
    fn grouped_lowering_roundtrips_for_any_group(
        g in pipeline_graph_strategy(),
        pick in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let names: Vec<NodeId> = g.node_names().into_iter().collect();
        let group: BTreeSet<NodeId> = names
            .iter()
            .zip(pick.iter())
            .filter(|(_, p)| **p)
            .map(|(n, _)| n.clone())
            .collect();
        let lowered = lower_grouped(&g, &group).unwrap();
        let g2 = lift(&lowered).unwrap();
        prop_assert_eq!(&g, &g2);
    }

    #[test]
    fn simulation_is_deterministic(g in pipeline_graph_strategy(), x in -50i64..50) {
        let (placed, _) = place_buffers(&g);
        let feeds = [("x".to_string(), vec![Value::Int(x)])].into_iter().collect();
        let r1 = simulate(&placed, &feeds, Default::default(), SimConfig::default());
        let r2 = simulate(&placed, &feeds, Default::default(), SimConfig::default());
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.cycles, b.cycles);
                prop_assert_eq!(a.outputs, b.outputs);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "nondeterministic failure: {a:?} vs {b:?}"),
        }
    }
}
