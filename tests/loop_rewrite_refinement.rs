//! The paper's §5: the out-of-order loop refines the sequential loop.
//!
//! Theorem 5.3 is checked three ways:
//! 1. bounded trace inclusion `⟦rhs⟧ ⊑ ⟦lhs⟧` on a small value domain,
//! 2. randomized nondeterministic execution — any scheduling of the tagged
//!    loop must produce the sequential loop's output stream, including its
//!    order (the in-order release property of the Untagger, §5.2),
//! 3. property-based testing over random input batches (GCD pairs).

use graphiti::prelude::*;
use graphiti_ir::PortName;
use graphiti_sem::run_random;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds the canonical sequential loop with body `f`.
fn seq_loop(f: PureFn) -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("mux", CompKind::Mux).unwrap();
    g.add_node("body", CompKind::Pure { func: f }).unwrap();
    g.add_node("split", CompKind::Split).unwrap();
    g.add_node("br", CompKind::Branch).unwrap();
    g.add_node("fork", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("init", CompKind::Init { initial: false }).unwrap();
    g.connect(ep("mux", "out"), ep("body", "in")).unwrap();
    g.connect(ep("body", "out"), ep("split", "in")).unwrap();
    g.connect(ep("split", "out0"), ep("br", "in")).unwrap();
    g.connect(ep("split", "out1"), ep("fork", "in")).unwrap();
    g.connect(ep("fork", "out0"), ep("br", "cond")).unwrap();
    g.connect(ep("fork", "out1"), ep("init", "in")).unwrap();
    g.connect(ep("init", "out"), ep("mux", "cond")).unwrap();
    g.connect(ep("br", "t"), ep("mux", "t")).unwrap();
    g.expose_input("entry", ep("mux", "f")).unwrap();
    g.expose_output("exit", ep("br", "f")).unwrap();
    g
}

/// The GCD step `f(a, b) = ((b, a mod b), (a mod b) != 0)`.
fn gcd_body() -> PureFn {
    PureFn::comp(
        PureFn::par(PureFn::Id, PureFn::Op(Op::NeZero)),
        PureFn::comp(
            PureFn::par(PureFn::pair(PureFn::Snd, PureFn::Op(Op::Mod)), PureFn::Op(Op::Mod)),
            PureFn::Dup,
        ),
    )
}

/// Countdown body `f(x) = (x - 2, x - 2 >= 1)`: distinguishable exits.
fn countdown_body() -> PureFn {
    let step =
        PureFn::comp(PureFn::Op(Op::SubI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(2))));
    let cond =
        PureFn::comp(PureFn::Op(Op::GeI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(1))));
    PureFn::comp(PureFn::par(PureFn::Id, cond), PureFn::comp(PureFn::Dup, step))
}

fn apply_ooo(g: &ExprHigh, tags: u32) -> ExprHigh {
    let mut engine = Engine::new();
    engine.apply_first(g, &catalog::ooo::loop_ooo(tags)).unwrap().expect("loop matches")
}

#[test]
fn bounded_trace_inclusion_holds() {
    let lhs = seq_loop(countdown_body());
    let rhs = apply_ooo(&lhs, 2);
    let (imp, _) = denote_graph(&rhs, &Env::standard()).unwrap();
    let (spec, _) = denote_graph(&lhs, &Env::standard()).unwrap();
    let cfg = RefineConfig {
        domain: vec![Value::Int(2), Value::Int(3)],
        max_depth: 16,
        max_states: 300_000,
        ..Default::default()
    };
    let r = check_refinement(&imp, &spec, &cfg);
    assert!(r.is_ok(), "{r:?}");
}

fn run_loop(g: &ExprHigh, inputs: &[Value], seed: u64) -> Vec<Value> {
    let (m, _) = denote_graph(g, &Env::standard()).unwrap();
    let feeds: BTreeMap<PortName, Vec<Value>> =
        [(PortName::Io(0), inputs.to_vec())].into_iter().collect();
    let r = run_random(&m, &feeds, seed, 60_000);
    assert!(r.inputs_exhausted, "schedule starved the inputs");
    r.outputs.get(&PortName::Io(0)).cloned().unwrap_or_default()
}

#[test]
fn any_schedule_preserves_program_order() {
    let lhs = seq_loop(countdown_body());
    let rhs = apply_ooo(&lhs, 3);
    let inputs: Vec<Value> = [7, 2, 9, 4, 3].iter().map(|x| Value::Int(*x)).collect();
    let expected = run_loop(&lhs, &inputs, 0);
    assert_eq!(expected.len(), inputs.len());
    for seed in 0..25 {
        let got = run_loop(&rhs, &inputs, seed);
        assert_eq!(got, expected, "seed {seed}");
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = b;
        b = a.rem_euclid(b);
        a = t;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random GCD batches through the tagged loop, random schedules: the
    /// output stream equals the sequential results, in order.
    #[test]
    fn ooo_gcd_refines_sequential_gcd(
        pairs in proptest::collection::vec((1i64..300, 1i64..300), 1..5),
        seed in 0u64..1000,
    ) {
        let lhs = seq_loop(gcd_body());
        let rhs = apply_ooo(&lhs, 3);
        let inputs: Vec<Value> = pairs
            .iter()
            .map(|(a, b)| Value::pair(Value::Int(*a), Value::Int(*b)))
            .collect();
        let expected: Vec<Value> = pairs
            .iter()
            .map(|(a, b)| Value::pair(Value::Int(gcd(*a, *b)), Value::Int(0)))
            .collect();
        let got = run_loop(&rhs, &inputs, seed);
        prop_assert_eq!(got, expected);
    }

    /// The tag pool bounds in-flight executions but never loses or
    /// duplicates results, for any pool size.
    #[test]
    fn tag_pool_size_does_not_affect_results(
        tags in 1u32..6,
        xs in proptest::collection::vec(2i64..20, 1..6),
        seed in 0u64..500,
    ) {
        let lhs = seq_loop(countdown_body());
        let rhs = apply_ooo(&lhs, tags);
        let inputs: Vec<Value> = xs.iter().map(|x| Value::Int(*x)).collect();
        let expected = run_loop(&lhs, &inputs, 1);
        let got = run_loop(&rhs, &inputs, seed);
        prop_assert_eq!(got, expected);
    }
}
