//! The §5 proof structure, mechanized as executable invariants.
//!
//! The paper's refinement proof for the loop rewrite rests on:
//!
//! * **ψ (Lemma 5.2, "state invariant")** — *no-duplication*: each
//!   allocated tag appears on at most one in-flight value across the entire
//!   state; *in-order*: the Tagger's allocation order records distinct live
//!   tags and completed tags are exactly a subset of the allocated ones.
//! * **ω (Lemma 5.1, "flushing invariant")** — after the sequential loop
//!   drains, everything except its input queue is empty.
//! * **match / program order (Theorem 5.3)** — outputs leave the region in
//!   the order inputs entered.
//!
//! Lemma 5.2's statement — ψ holds initially and every internal transition
//! preserves it — is checked here on randomized walks over the denoted
//! out-of-order module: ψ is asserted at *every* step of every walk.

use graphiti::prelude::*;
use graphiti_ir::{PortName, Tag};
use graphiti_sem::{CompState, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the canonical sequential countdown loop and its tagged rewrite.
fn loops(tags: u32) -> (ExprHigh, ExprHigh) {
    let step =
        PureFn::comp(PureFn::Op(Op::SubI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(2))));
    let cond =
        PureFn::comp(PureFn::Op(Op::GeI), PureFn::pair(PureFn::Id, PureFn::Const(Value::Int(1))));
    let f = PureFn::comp(PureFn::par(PureFn::Id, cond), PureFn::comp(PureFn::Dup, step));
    let mut g = ExprHigh::new();
    g.add_node("mux", CompKind::Mux).unwrap();
    g.add_node("body", CompKind::Pure { func: f }).unwrap();
    g.add_node("split", CompKind::Split).unwrap();
    g.add_node("br", CompKind::Branch).unwrap();
    g.add_node("fork", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("init", CompKind::Init { initial: false }).unwrap();
    g.connect(ep("mux", "out"), ep("body", "in")).unwrap();
    g.connect(ep("body", "out"), ep("split", "in")).unwrap();
    g.connect(ep("split", "out0"), ep("br", "in")).unwrap();
    g.connect(ep("split", "out1"), ep("fork", "in")).unwrap();
    g.connect(ep("fork", "out0"), ep("br", "cond")).unwrap();
    g.connect(ep("fork", "out1"), ep("init", "in")).unwrap();
    g.connect(ep("init", "out"), ep("mux", "cond")).unwrap();
    g.connect(ep("br", "t"), ep("mux", "t")).unwrap();
    g.expose_input("entry", ep("mux", "f")).unwrap();
    g.expose_output("exit", ep("br", "f")).unwrap();
    let mut engine = Engine::new();
    let ooo = engine.apply_first(&g, &catalog::ooo::loop_ooo(tags)).unwrap().expect("loop matches");
    (g, ooo)
}

/// The tagger leaf of a state (the out-of-order module has exactly one).
fn tagger_state(s: &State) -> &graphiti_sem::TaggerState {
    let taggers: Vec<_> = s
        .leaves()
        .into_iter()
        .filter_map(|l| match l {
            CompState::Tagger(t) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(taggers.len(), 1, "one tagger in the rewritten loop");
    taggers[0]
}

/// ψ, the state invariant of Lemma 5.2.
fn psi(s: &State, tags: u32) {
    let t = tagger_state(s);

    // In-order part 1: the allocation order holds distinct tags, all from
    // the pool.
    let order: Vec<Tag> = t.order.iter().copied().collect();
    let order_set: BTreeSet<Tag> = order.iter().copied().collect();
    assert_eq!(order.len(), order_set.len(), "allocation order has duplicates");
    assert!(order_set.iter().all(|x| *x < tags), "tag outside the pool");

    // In-order part 2: free ∪ allocated = pool, disjointly.
    assert!(t.free.is_disjoint(&order_set), "free and allocated overlap");
    assert_eq!(t.free.len() + order_set.len(), tags as usize, "pool conservation");

    // Completions are a subset of the allocated tags.
    for tag in t.done.keys() {
        assert!(order_set.contains(tag), "completed tag {tag} is not allocated");
    }

    // No-duplication: per tag, at most one in-flight *data* value (Int or
    // Pair payload) and at most one in-flight *condition* (Bool payload) —
    // the Split transiently separates an iteration's value from its
    // continue bit, so the two roles are counted separately, exactly as the
    // paper's in-order property links tags with "the correct value".
    let mut data_seen: BTreeMap<Tag, usize> = BTreeMap::new();
    let mut cond_seen: BTreeMap<Tag, usize> = BTreeMap::new();
    for v in s.all_values() {
        if let (Some(tag), payload) = v.untag() {
            let slot = if matches!(payload, Value::Bool(_)) {
                cond_seen.entry(tag).or_insert(0)
            } else {
                data_seen.entry(tag).or_insert(0)
            };
            *slot += 1;
        }
    }
    for tag in t.done.keys() {
        *data_seen.entry(*tag).or_insert(0) += 1;
    }
    for (label, seen) in [("data", &data_seen), ("cond", &cond_seen)] {
        for (tag, count) in seen {
            assert!(count <= &1, "tag {tag} appears on {count} in-flight {label} values:\n{s}");
            assert!(order_set.contains(tag), "in-flight tag {tag} is not allocated");
        }
    }
}

/// Randomized walk over the module's transitions, asserting ψ at every
/// state.
fn psi_preserved_walk(tags: u32, inputs: &[i64], seed: u64) {
    let (_, ooo) = loops(tags);
    let (m, _) = denote_graph(&ooo, &Env::standard()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = m.init[0].clone();
    psi(&state, tags);
    let mut pending: Vec<Value> = inputs.iter().rev().map(|x| Value::Int(*x)).collect();
    let in_port = PortName::Io(0);
    let out_port = PortName::Io(0);
    for _ in 0..3000 {
        let mut actions: Vec<State> = Vec::new();
        if let Some(v) = pending.last() {
            actions.extend(m.inputs[&in_port](&state, v));
        }
        let n_input_actions = actions.len();
        actions.extend(m.internal_step(&state));
        let outputs: Vec<(Value, State)> = m.outputs[&out_port](&state);
        let n_before_outputs = actions.len();
        actions.extend(outputs.into_iter().map(|(_, s)| s));
        if actions.is_empty() {
            break;
        }
        let pick = rng.gen_range(0..actions.len());
        if pick < n_input_actions {
            pending.pop();
        }
        let _ = n_before_outputs;
        state = actions.swap_remove(pick);
        psi(&state, tags);
    }
}

#[test]
fn lemma_5_2_psi_is_preserved_by_every_step() {
    for seed in 0..10 {
        psi_preserved_walk(2, &[7, 4, 9, 2], seed);
    }
    for seed in 0..5 {
        psi_preserved_walk(4, &[3, 3, 11, 5, 6, 2], 100 + seed);
    }
}

/// ω of Lemma 5.1: once the sequential loop has emitted all results, every
/// component is empty except (possibly) its input-side queues.
#[test]
fn lemma_5_1_omega_after_flushing() {
    let (seq, _) = loops(2);
    let (m, _) = denote_graph(&seq, &Env::standard()).unwrap();
    let feeds: BTreeMap<PortName, Vec<Value>> =
        [(PortName::Io(0), vec![Value::Int(5), Value::Int(8)])].into_iter().collect();
    let r = graphiti_sem::run_random(&m, &feeds, 3, 30_000);
    assert_eq!(r.outputs[&PortName::Io(0)].len(), 2, "both inputs flushed");
    // After flushing: the only resident token is the final `false`
    // condition parked at the Mux (the loop is primed for the next input);
    // in particular no data values remain in flight.
    let residual: Vec<&Value> = r.final_state.all_values();
    assert!(
        residual.iter().all(|v| matches!(v, Value::Bool(false))),
        "unexpected in-flight values after flushing: {residual:?}"
    );
    assert!(residual.len() <= 1, "{residual:?}");
}

/// The match/program-order part of Theorem 5.3, checked directly on the
/// module: outputs appear in input order even when the scheduler lets later
/// inputs finish their loop bodies first.
#[test]
fn theorem_5_3_outputs_in_program_order() {
    let (_, ooo) = loops(3);
    let (m, _) = denote_graph(&ooo, &Env::standard()).unwrap();
    // With f(x) = x - 2 continuing while x - 2 >= 1: the input 9 steps
    // 9 -> 7 -> 5 -> 3 -> 1 -> -1 (five iterations, exits with -1) while
    // the input 2 exits immediately with 0. Under every schedule the -1
    // must still come out before the 0.
    let feeds: BTreeMap<PortName, Vec<Value>> =
        [(PortName::Io(0), vec![Value::Int(9), Value::Int(2)])].into_iter().collect();
    for seed in 0..30 {
        let r = graphiti_sem::run_random(&m, &feeds, seed, 30_000);
        let outs = &r.outputs[&PortName::Io(0)];
        assert_eq!(outs, &vec![Value::Int(-1), Value::Int(0)], "seed {seed}");
    }
}
