//! Theorem 4.6 (replacement refines), executably: if `⟦rhs⟧ ⊑ ⟦lhs⟧` for a
//! rewrite, then applying it to a *whole graph* `e` yields
//! `⟦e[lhs := rhs]⟧ ⊑ ⟦e⟧`. The engine checks the premise per application in
//! checked mode; here we check the *conclusion* on the full circuits, and
//! the preorder/congruence properties of §4.6 that the proof rests on.

use graphiti::prelude::*;
use graphiti_ir::PortName;
use graphiti_sem::Module;
use std::collections::BTreeMap;

fn io_module(g: &ExprHigh) -> Module {
    let (m, _) = denote_graph(g, &Env::standard()).unwrap();
    m
}

fn small_cfg() -> RefineConfig {
    RefineConfig { domain: vec![Value::Int(0), Value::Int(1)], max_depth: 8, ..Default::default() }
}

/// A small circuit containing a fork-of-fork tree feeding sinks and an
/// operator — fork-flatten applies inside a bigger context.
fn fork_tree_graph() -> ExprHigh {
    let mut g = ExprHigh::new();
    g.add_node("a", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("b", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("add", CompKind::Operator { op: Op::AddI }).unwrap();
    g.add_node("k", CompKind::Sink).unwrap();
    g.expose_input("x", ep("a", "in")).unwrap();
    g.connect(ep("a", "out0"), ep("b", "in")).unwrap();
    g.connect(ep("a", "out1"), ep("k", "in")).unwrap();
    g.connect(ep("b", "out0"), ep("add", "in0")).unwrap();
    g.connect(ep("b", "out1"), ep("add", "in1")).unwrap();
    g.expose_output("y", ep("add", "out")).unwrap();
    g
}

#[test]
fn whole_graph_refinement_after_fork_flatten() {
    let g = fork_tree_graph();
    let mut engine = Engine::new();
    let g2 = engine.apply_first(&g, &catalog::normalize::fork_flatten()).unwrap().expect("match");
    // Conclusion of Theorem 4.6 on the full circuits.
    let before = io_module(&g);
    let after = io_module(&g2);
    let r = check_refinement(&after, &before, &small_cfg());
    assert!(r.is_ok(), "{r:?}");
    // This rewrite is actually an equivalence.
    let r = check_refinement(&before, &after, &small_cfg());
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn whole_graph_refinement_after_op_to_pure() {
    let mut g = ExprHigh::new();
    g.add_node("s", CompKind::Split).unwrap();
    g.add_node("m", CompKind::Operator { op: Op::AddI }).unwrap();
    g.expose_input("x", ep("s", "in")).unwrap();
    g.connect(ep("s", "out0"), ep("m", "in0")).unwrap();
    g.connect(ep("s", "out1"), ep("m", "in1")).unwrap();
    g.expose_output("y", ep("m", "out")).unwrap();
    let mut engine = Engine::new();
    let g2 = engine.apply_first(&g, &catalog::pure_gen::op_to_pure()).unwrap().expect("match");
    let cfg = RefineConfig {
        domain: vec![Value::pair(Value::Int(0), Value::Int(1))],
        max_depth: 8,
        ..Default::default()
    };
    let r = check_refinement(&io_module(&g2), &io_module(&g), &cfg);
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn refinement_is_reflexive() {
    let g = fork_tree_graph();
    let m = io_module(&g);
    let r = check_refinement(&m, &m, &small_cfg());
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn refinement_is_transitive_on_buffer_chains() {
    // chains of 1, 2, 3 buffers: 3 ⊑ 2 and 2 ⊑ 1 imply 3 ⊑ 1; check all
    // three edges hold (they are trace-equal).
    let chain = |n: usize| {
        let mut g = ExprHigh::new();
        for i in 0..n {
            g.add_node(format!("b{i}"), CompKind::Buffer { slots: 1, transparent: false }).unwrap();
        }
        g.expose_input("x", ep("b0", "in")).unwrap();
        for i in 0..n - 1 {
            g.connect(ep(format!("b{i}"), "out"), ep(format!("b{}", i + 1), "in")).unwrap();
        }
        g.expose_output("y", ep(format!("b{}", n - 1), "out")).unwrap();
        io_module(&g)
    };
    let (m1, m2, m3) = (chain(1), chain(2), chain(3));
    let cfg = small_cfg();
    assert!(check_refinement(&m3, &m2, &cfg).is_ok());
    assert!(check_refinement(&m2, &m1, &cfg).is_ok());
    assert!(check_refinement(&m3, &m1, &cfg).is_ok());
}

#[test]
fn refinement_is_preserved_by_product_and_connect() {
    // m ⊑ m' implies (m ⊎ k)[o ⇝ i] ⊑ (m' ⊎ k)[o ⇝ i]: compare a 2-buffer
    // implementation against a 1-buffer spec, both wrapped in the same
    // context (a downstream buffer connected to the output).
    let wrap = |inner_n: usize| {
        let mut g = ExprHigh::new();
        for i in 0..inner_n {
            g.add_node(format!("b{i}"), CompKind::Buffer { slots: 1, transparent: false }).unwrap();
        }
        g.add_node("ctx", CompKind::Buffer { slots: 1, transparent: false }).unwrap();
        g.expose_input("x", ep("b0", "in")).unwrap();
        for i in 0..inner_n - 1 {
            g.connect(ep(format!("b{i}"), "out"), ep(format!("b{}", i + 1), "in")).unwrap();
        }
        g.connect(ep(format!("b{}", inner_n - 1), "out"), ep("ctx", "in")).unwrap();
        g.expose_output("y", ep("ctx", "out")).unwrap();
        io_module(&g)
    };
    let r = check_refinement(&wrap(2), &wrap(1), &small_cfg());
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn substitution_on_exprlow_matches_engine_result() {
    // The engine's ExprLow path: manually lower, substitute, lift; the
    // result equals the engine's output graph up to fresh names.
    let g = fork_tree_graph();
    let mut engine = Engine::new();
    let g2 = engine.apply_first(&g, &catalog::normalize::fork_flatten()).unwrap().expect("match");
    // The flattened graph has exactly one fork with 3 ways.
    let forks: Vec<usize> = g2
        .nodes()
        .filter_map(|(_, k)| match k {
            CompKind::Fork { ways } => Some(*ways),
            _ => None,
        })
        .collect();
    assert_eq!(forks, vec![3]);
    // And the graph-level I/O is unchanged.
    let ins: Vec<&String> = g2.inputs().map(|(n, _)| n).collect();
    let outs: Vec<&String> = g2.outputs().map(|(n, _)| n).collect();
    assert_eq!(ins, ["x"]);
    assert_eq!(outs, ["y"]);
    // Lowering the result produces a well-formed expression with the same
    // dangling ports.
    let lowered = graphiti_ir::lower(&g2).unwrap();
    let (dins, douts) = lowered.expr.dangling();
    assert_eq!(dins, vec![PortName::Io(0)]);
    assert_eq!(douts, vec![PortName::Io(0)]);
}

#[test]
fn checked_engine_records_verdicts_per_application() {
    let g = fork_tree_graph();
    let mut engine = Engine::checked(small_cfg());
    let _ = engine.apply_first(&g, &catalog::normalize::fork_flatten()).unwrap().expect("match");
    assert_eq!(engine.log.len(), 1);
    let applied = &engine.log[0];
    assert_eq!(applied.rewrite, "fork-flatten");
    assert!(applied.verdict.as_ref().expect("verified rewrite is checked").is_ok());
    let _: BTreeMap<String, String> = BTreeMap::new();
}
