//! Cross-validation of the two interpretations of a circuit: the abstract
//! nondeterministic module semantics (graphiti-sem, used for refinement)
//! and the cycle-accurate elastic simulator (graphiti-sim, used for
//! performance). For deterministic circuits (no Merge), every schedule of
//! the abstract semantics and the timed simulation must produce the same
//! output streams; for circuits containing the out-of-order loop, the
//! Untagger makes the *visible* behaviour deterministic again, so the same
//! cross-check applies.

use graphiti::prelude::*;
use graphiti_ir::PortName;
use graphiti_sem::run_random;
use std::collections::BTreeMap;

/// Runs a circuit both ways on the same single-input feed and compares the
/// output streams.
fn cross_check(g: &ExprHigh, input_name: &str, output_name: &str, inputs: Vec<Value>) {
    // Abstract semantics (several random schedules).
    let (m, lowered) = denote_graph(g, &Env::standard()).unwrap();
    let in_idx = lowered
        .input_names
        .iter()
        .find(|(_, n)| *n == input_name)
        .map(|(i, _)| *i)
        .expect("input exists");
    let out_idx = lowered
        .output_names
        .iter()
        .find(|(_, n)| *n == output_name)
        .map(|(i, _)| *i)
        .expect("output exists");
    let feeds: BTreeMap<PortName, Vec<Value>> =
        [(PortName::Io(in_idx), inputs.clone())].into_iter().collect();
    let mut abstract_outs = None;
    for seed in 0..8 {
        let r = run_random(&m, &feeds, seed, 50_000);
        assert!(r.inputs_exhausted, "seed {seed}");
        let outs = r.outputs.get(&PortName::Io(out_idx)).cloned().unwrap_or_default();
        match &abstract_outs {
            None => abstract_outs = Some(outs),
            Some(prev) => assert_eq!(prev, &outs, "abstract semantics diverged at seed {seed}"),
        }
    }

    // Timed simulation (after buffer placement).
    let (placed, _) = place_buffers(g);
    let sim_feeds: BTreeMap<String, Vec<Value>> =
        [(input_name.to_string(), inputs)].into_iter().collect();
    let r = simulate(&placed, &sim_feeds, Default::default(), SimConfig::default()).unwrap();
    assert_eq!(
        r.outputs[output_name],
        abstract_outs.expect("at least one schedule ran"),
        "timed simulation disagrees with the abstract semantics"
    );
}

#[test]
fn deterministic_datapath_agrees() {
    // x -> fork -> (mod, passthrough buffer) -> join -> split -> outputs...
    // kept single-output: y = (x mod 7 != 0).
    let mut g = ExprHigh::new();
    g.add_node("f", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("c7", CompKind::Constant { value: Value::Int(7) }).unwrap();
    g.add_node("m", CompKind::Operator { op: Op::Mod }).unwrap();
    g.add_node("nz", CompKind::Operator { op: Op::NeZero }).unwrap();
    g.expose_input("x", ep("f", "in")).unwrap();
    g.connect(ep("f", "out0"), ep("m", "in0")).unwrap();
    g.connect(ep("f", "out1"), ep("c7", "ctrl")).unwrap();
    g.connect(ep("c7", "out"), ep("m", "in1")).unwrap();
    g.connect(ep("m", "out"), ep("nz", "in0")).unwrap();
    g.expose_output("y", ep("nz", "out")).unwrap();
    cross_check(&g, "x", "y", vec![Value::Int(14), Value::Int(15), Value::Int(0), Value::Int(3)]);
}

#[test]
fn sequential_loop_agrees() {
    let f = PureFn::comp(
        PureFn::par(PureFn::Id, PureFn::Op(Op::NeZero)),
        PureFn::comp(
            PureFn::par(PureFn::pair(PureFn::Snd, PureFn::Op(Op::Mod)), PureFn::Op(Op::Mod)),
            PureFn::Dup,
        ),
    );
    let mut g = ExprHigh::new();
    g.add_node("mux", CompKind::Mux).unwrap();
    g.add_node("body", CompKind::Pure { func: f }).unwrap();
    g.add_node("split", CompKind::Split).unwrap();
    g.add_node("br", CompKind::Branch).unwrap();
    g.add_node("fork", CompKind::Fork { ways: 2 }).unwrap();
    g.add_node("init", CompKind::Init { initial: false }).unwrap();
    g.connect(ep("mux", "out"), ep("body", "in")).unwrap();
    g.connect(ep("body", "out"), ep("split", "in")).unwrap();
    g.connect(ep("split", "out0"), ep("br", "in")).unwrap();
    g.connect(ep("split", "out1"), ep("fork", "in")).unwrap();
    g.connect(ep("fork", "out0"), ep("br", "cond")).unwrap();
    g.connect(ep("fork", "out1"), ep("init", "in")).unwrap();
    g.connect(ep("init", "out"), ep("mux", "cond")).unwrap();
    g.connect(ep("br", "t"), ep("mux", "t")).unwrap();
    g.expose_input("entry", ep("mux", "f")).unwrap();
    g.expose_output("exit", ep("br", "f")).unwrap();

    let inputs = vec![
        Value::pair(Value::Int(30), Value::Int(12)),
        Value::pair(Value::Int(7), Value::Int(5)),
    ];
    cross_check(&g, "entry", "exit", inputs.clone());

    // The out-of-order rewrite keeps the visible behaviour deterministic
    // (the Untagger releases in order), so the cross-check still applies.
    let mut engine = Engine::new();
    let ooo = engine.apply_first(&g, &catalog::ooo::loop_ooo(2)).unwrap().expect("loop matches");
    cross_check(&ooo, "entry", "exit", inputs);
}
