//! End-to-end tests of the `graphiti-cli` binary (the Fig. 1 tool
//! interface): dot in, rewritten dot out.

use std::io::Write;
use std::process::{Command, Stdio};

const SEQUENTIAL_LOOP: &str = r#"
digraph gcd_loop {
  entry [type="entry"];
  exit  [type="exit"];
  mux   [type="mux"];
  body  [type="pure" func="comp(parf(id,op:nez),comp(parf(comp(parf(snd,op:mod),dup),op:mod),dup))"];
  split [type="split"];
  br    [type="branch"];
  fork  [type="fork" ways="2"];
  init  [type="init" initial="false"];
  entry -> mux  [to="f"];
  mux   -> body [from="out" to="in"];
  body  -> split [from="out" to="in"];
  split -> br   [from="out0" to="in"];
  split -> fork [from="out1" to="in"];
  fork  -> br   [from="out0" to="cond"];
  fork  -> init [from="out1" to="in"];
  init  -> mux  [from="out" to="cond"];
  br    -> mux  [from="t" to="t"];
  br    -> exit [from="f"];
}
"#;

fn run_cli(stdin: &str, extra_args: &[&str]) -> (String, String, bool) {
    let exe = env!("CARGO_BIN_EXE_graphiti-cli");
    let mut child = Command::new(exe)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // The CLI may exit before reading stdin (e.g. on a bad flag), which
    // surfaces here as a broken pipe — not a test failure.
    let _ = child.stdin.as_mut().expect("stdin").write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("cli completes");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_transforms_a_marked_loop() {
    let (stdout, stderr, ok) = run_cli(SEQUENTIAL_LOOP, &["--tags", "4", "--stats"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("type=\"tagger\""), "{stdout}");
    assert!(stdout.contains("type=\"merge\""));
    assert!(!stdout.contains("type=\"mux\""));
    assert!(stderr.contains("transformed = true"), "{stderr}");
    // The printed output parses back as a valid circuit.
    let g = graphiti::prelude::parse_dot(&stdout).expect("output parses");
    g.validate().expect("output circuit complete");
}

#[test]
fn cli_auto_detects_the_single_loop() {
    let (stdout, _, ok) = run_cli(SEQUENTIAL_LOOP, &[]);
    assert!(ok);
    assert!(stdout.contains("tagger"));
}

#[test]
fn cli_reports_refusals_and_leaves_circuit_unchanged() {
    // Replace the pure body by a store-containing region: pure, but a store
    // hangs off the loop... simplest impure case: swap the Pure for a
    // region the pipeline cannot reduce — a Merge inside the body.
    let impure = SEQUENTIAL_LOOP.replace(
        r#"body  [type="pure" func="comp(parf(id,op:nez),comp(parf(comp(parf(snd,op:mod),dup),op:mod),dup))"];"#,
        r#"body  [type="pure" func="comp(parf(id,op:nez),comp(parf(comp(parf(snd,op:mod),dup),op:mod),dup))"];
           sidefork [type="fork" ways="2"];
           st   [type="store" mem="arr"];
           ksink [type="sink"];
           zero [type="constant" value="i:0"];"#,
    );
    // Rewire: mux.out -> sidefork -> (body, store path).
    let impure = impure
        .replace(
            r#"mux   -> body [from="out" to="in"];"#,
            r#"mux   -> sidefork [from="out" to="in"];
               sidefork -> body [from="out0" to="in"];
               sidefork -> zero [from="out1" to="ctrl"];
               zero -> st [from="out" to="addr"];
               st -> ksink [from="done" to="in"];"#,
        )
        .replace(
            r#"br    -> exit [from="f"];"#,
            r#"br    -> exit [from="f"];
               datasrc [type="constant" value="i:1"];
               dfork [type="fork" ways="2"];
               dsink [type="sink"];
               entry2 [type="entry"];
               entry2 -> dfork [to="in"];
               dfork -> datasrc [from="out0" to="ctrl"];
               dfork -> dsink [from="out1" to="in"];
               datasrc -> st [from="out" to="data"];"#,
        );
    let (stdout, stderr, ok) = run_cli(&impure, &["--mark", "init"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("refused"), "{stderr}");
    // Unchanged: still a mux, no tagger.
    assert!(stdout.contains("type=\"mux\""));
    assert!(!stdout.contains("type=\"tagger\""));
}

const GCD_PROGRAM: &str = r#"
program gcd
array arr1 = [i:12, i:35]
array arr2 = [i:18, i:21]
array result = zeros int 2

kernel for i in 0..2 ooo tags 4 {
  state a = arr1[i]
  state b = arr2[i]
  update a = b
  update b = a % b
  while nez(b)
  store result[i] = a
}
"#;

#[test]
fn cli_compile_mode_emits_optimized_dot() {
    let (stdout, stderr, ok) = run_cli(GCD_PROGRAM, &["--compile", "--stats"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("// kernel gcd_k0"));
    assert!(stdout.contains("type=\"tagger\""), "marked kernel was transformed: {stdout}");
    assert!(stderr.contains("transformed = true"), "{stderr}");
    // Drop the comment line; the rest parses as dot.
    let dot: String =
        stdout.lines().filter(|l| !l.starts_with("//")).collect::<Vec<_>>().join("\n");
    let g = graphiti::prelude::parse_dot(&dot).expect("output parses");
    g.validate().expect("complete circuit");
}

#[test]
fn cli_checked_deferred_discharges_in_parallel() {
    let (stdout, stderr, ok) = run_cli(SEQUENTIAL_LOOP, &["--tags", "4", "--checked-deferred"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("type=\"tagger\""), "{stdout}");
    assert!(stderr.contains("deferred obligations in parallel; all hold"), "{stderr}");
}

#[test]
fn cli_compile_mode_rejects_bad_programs() {
    let (_, stderr, ok) = run_cli("kernel for i in {", &["--compile"]);
    assert!(!ok);
    assert!(stderr.contains("line"), "{stderr}");
}

#[test]
fn cli_vcd_out_writes_a_parsable_waveform() {
    let dir = std::env::temp_dir().join(format!("graphiti_cli_vcd_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let vcd = dir.join("gcd.vcd");
    let vcd_str = vcd.to_str().unwrap().to_string();
    let (_, stderr, ok) = run_cli(GCD_PROGRAM, &["--compile", "--vcd-out", &vcd_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("waveform written"), "{stderr}");
    let doc = std::fs::read_to_string(&vcd).expect("vcd file exists");
    let dump = graphiti::obs::vcd::parse(&doc).expect("dump parses");
    assert!(!dump.signals.is_empty());
    assert!(dump.change_count() > 0);
    // And vcd-check accepts its own output.
    let (stdout, stderr, ok) = run_cli("", &["vcd-check", &vcd_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("signals"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_vcd_check_rejects_garbage() {
    let (_, stderr, ok) = run_cli("this is not vcd\n#0\n1!\n", &["vcd-check"]);
    assert!(!ok);
    assert!(stderr.contains("vcd line"), "{stderr}");
}

#[test]
fn cli_explain_stalls_prints_cause_breakdown() {
    let (stdout, stderr, ok) = run_cli(GCD_PROGRAM, &["explain-stalls", "--top", "3"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("stall attribution"), "{stdout}");
    assert!(stdout.contains("lost node-cycles:"), "{stdout}");
    assert!(stdout.contains("critical channels:"), "{stdout}");
    // Attribution mode replaces the dot output.
    assert!(!stdout.contains("digraph"), "{stdout}");
}

#[test]
fn cli_trace_nodes_narrows_the_waveform() {
    let dir = std::env::temp_dir().join(format!("graphiti_cli_tn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let vcd = dir.join("narrow.vcd");
    let vcd_str = vcd.to_str().unwrap().to_string();
    let (_, stderr, ok) =
        run_cli(GCD_PROGRAM, &["--compile", "--vcd-out", &vcd_str, "--trace-nodes", "mux2"]);
    assert!(ok, "stderr: {stderr}");
    let narrow = graphiti::obs::vcd::parse(&std::fs::read_to_string(&vcd).unwrap()).unwrap();
    let (_, _, ok) = run_cli(GCD_PROGRAM, &["--compile", "--vcd-out", &vcd_str]);
    assert!(ok);
    let full = graphiti::obs::vcd::parse(&std::fs::read_to_string(&vcd).unwrap()).unwrap();
    assert!(!narrow.signals.is_empty(), "filter must keep the mux channels");
    assert!(
        narrow.signals.len() < full.signals.len(),
        "filter must drop signals: {} vs {}",
        narrow.signals.len(),
        full.signals.len()
    );
    for sig in &narrow.signals {
        assert!(sig.name.contains("mux2"), "unexpected signal {}", sig.name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_vcd_out_requires_compile_mode() {
    let (_, stderr, ok) = run_cli(SEQUENTIAL_LOOP, &["--vcd-out", "/tmp/x.vcd"]);
    assert!(!ok);
    assert!(stderr.contains("compile mode"), "{stderr}");
}

#[test]
fn cli_rejects_garbage_input() {
    let (_, stderr, ok) = run_cli("this is not dot", &[]);
    assert!(!ok);
    assert!(stderr.contains("parse error") || stderr.contains("expected"), "{stderr}");
}

#[test]
fn cli_unknown_flag_fails() {
    let (_, stderr, ok) = run_cli(SEQUENTIAL_LOOP, &["--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn cli_mark_must_exist() {
    let (_, stderr, ok) = run_cli(SEQUENTIAL_LOOP, &["--mark", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("no such node"));
}

#[test]
fn cli_malformed_gsl_fails_cleanly_without_backtrace() {
    // The crash-proofing contract: hostile program text gets a pointed
    // diagnostic and a non-zero exit, never a panic message.
    let cases = [
        "program p\nkernel for i in 0..1 {\n  store ]a[ = 1\n}\n",
        "program p\narray a = zeros int 99999999999999\n",
        "program p\nkernel for i in 0..1 ooo tags 4294967295 {\n  while nez(1)\n}\n",
    ];
    for src in cases {
        let (_, stderr, ok) = run_cli(src, &["--compile"]);
        assert!(!ok, "must exit non-zero for {src:?}");
        assert!(!stderr.contains("panicked"), "no backtrace for {src:?}: {stderr}");
        assert!(stderr.contains("line "), "diagnostic names the line: {stderr}");
    }
}

#[test]
fn cli_compiles_multi_site_stores_through_a_store_queue() {
    // Two store sites on one array used to be rejected outright
    // (StoreRace); they now compile through an in-order store queue.
    let src = "program race\narray ia0 = [i:-5]\narray out0 = [i:0]\n\n\
               kernel for i in 0..1 {\n  state lim = 1\n  update lim = 1\n\
               \x20 do store out0[0] = ia0[0]\n  while (1 < 1)\n  store out0[i] = 1\n}\n";
    let (_, stderr, ok) = run_cli(src, &["--compile"]);
    assert!(ok, "multi-site stores compile via the store queue: {stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn cli_rejects_unorderable_store_race_with_site_diagnostics() {
    // The guard still fires when the racing array is also loaded outside
    // its store statements (here: in the update expression) — the store
    // queue cannot order that load. The diagnostic names the sites.
    let src = "program race\narray out0 = [i:0]\n\n\
               kernel for i in 0..1 {\n  state lim = 1\n  update lim = out0[0]\n\
               \x20 do store out0[0] = 1\n  while (1 < 1)\n  store out0[i] = 1\n}\n";
    let (_, stderr, ok) = run_cli(src, &["--compile"]);
    assert!(!ok, "unorderable store race must be rejected");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(
        stderr.contains("body store #0") && stderr.contains("epilogue store #0"),
        "diagnostic names the conflicting sites: {stderr}"
    );
}

#[test]
fn cli_profile_phase_attribution_sums_to_the_pipeline_span() {
    // A kernel without `ooo` keeps the refinement phase trivial, so the
    // whole profile runs in milliseconds even in debug builds; the
    // attribution invariant under test is the same either way.
    let program = GCD_PROGRAM.replace(" ooo tags 4", "");
    let dir = std::env::temp_dir().join(format!("graphiti_cli_prof_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gsl = dir.join("tiny.gsl");
    std::fs::write(&gsl, &program).unwrap();
    let json = dir.join("profile.json");
    let folded = dir.join("profile.folded");
    let flight = dir.join("flight.jsonl");
    let (stdout, stderr, ok) = run_cli(
        "",
        &[
            "profile",
            gsl.to_str().unwrap(),
            "--json",
            json.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
            "--flight-out",
            flight.to_str().unwrap(),
        ],
    );
    assert!(ok, "stderr: {stderr}");
    // The text table attributes every phase under the root span.
    for path in ["pipeline", "pipeline;parse", "pipeline;rewrite", "pipeline;check"] {
        assert!(stdout.contains(path), "missing row `{path}`:\n{stdout}");
    }
    // The contract: per-phase totals plus the root's self time partition
    // the root span exactly, so the printed drift must be within 1%.
    let summary = stdout
        .lines()
        .find(|l| l.starts_with("phase self/total sum:"))
        .expect("summary line printed");
    let drift: f64 = summary
        .split("drift ")
        .nth(1)
        .and_then(|s| s.strip_suffix('%'))
        .expect("drift field")
        .parse()
        .expect("drift parses");
    assert!(drift.abs() <= 1.0, "phase attribution drifted {drift}%: {summary}");
    // Sidecar artifacts: JSON rows, folded stacks, and the flight tail.
    let json_doc = std::fs::read_to_string(&json).expect("profile JSON written");
    assert!(json_doc.contains("\"rows\""), "{json_doc}");
    assert!(json_doc.contains("pipeline;simulate"), "{json_doc}");
    let folded_doc = std::fs::read_to_string(&folded).expect("folded stacks written");
    assert!(folded_doc.lines().any(|l| l.starts_with("pipeline;")), "{folded_doc}");
    let flight_doc = std::fs::read_to_string(&flight).expect("flight dump written");
    assert!(flight_doc.contains("profile.start"), "{flight_doc}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_schema_prints_the_frozen_metrics_contract() {
    let (stdout, stderr, ok) = run_cli("", &["schema"]);
    assert!(ok, "stderr: {stderr}");
    // Matches the checked-in golden file byte for byte (the same contract
    // the schema-drift CI step and crates/obs/tests/schema_golden.rs pin).
    assert_eq!(stdout, include_str!("../obs/schema.json"));
}

#[test]
fn cli_vcd_check_rejects_truncated_document_cleanly() {
    let (_, stderr, ok) = run_cli("$var wire 64 ! ch0 $end\n#0\nb1011\n", &["vcd-check"]);
    assert!(!ok);
    assert!(!stderr.contains("panicked"), "{stderr}");
}
