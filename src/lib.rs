//! # graphiti
//!
//! A Rust reproduction of **Graphiti: Formally Verified Out-of-Order
//! Execution in Dataflow Circuits** (ASPLOS 2026): a rewriting framework
//! for the dataflow circuits produced by dynamic high-level synthesis,
//! together with the full substrate needed to evaluate it — a mini HLS
//! front-end, a cycle-accurate elastic-circuit simulator with buffer
//! placement, timing and area models, and a statically scheduled baseline.
//!
//! The paper's development is a Lean 4 proof; this reproduction replaces
//! deductive proofs with *executable* checking — a bounded trace-inclusion
//! refinement checker, simulation-diagram verification, and randomized
//! property tests — while implementing all of the paper's algorithms
//! (ExprHigh/ExprLow, the denotational module semantics with the ⊎ and
//! `[o ⇝ i]` combinators, the substitution-based rewriting function, the
//! rewrite catalogue including the verified out-of-order loop rewrite, and
//! the five-phase optimization pipeline).
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `graphiti-ir` | ExprHigh / ExprLow, values, DOT interchange |
//! | [`obs`] | `graphiti-obs` | metrics registry, timed spans, trace exporters |
//! | [`sem`] | `graphiti-sem` | module semantics, denotation, refinement checking |
//! | [`rewrite`] | `graphiti-rewrite` | rewriting engine, catalogue, e-graph oracle |
//! | [`frontend`] | `graphiti-frontend` | loop-nest language → elastic circuits |
//! | [`sim`] | `graphiti-sim` | cycle simulation, buffer placement, timing, area |
//! | [`staticsched`] | `graphiti-static` | the Vericert-style static baseline |
//! | [`pipeline`] | `graphiti-core` | the five-phase out-of-order pipeline |
//! | [`bench`] | `graphiti-bench` | benchmarks, evaluation harness, table printers |
//!
//! ## Quickstart
//!
//! ```
//! use graphiti::prelude::*;
//!
//! // The paper's §2 example: GCD over array pairs, made out-of-order.
//! let program = graphiti::bench::suite::gcd(6);
//! let compiled = compile(&program)?;
//! let kernel = &compiled.kernels[0];
//!
//! let opts = PipelineOptions { tags: 8, ..Default::default() };
//! let (optimized, report) = optimize_loop(&kernel.graph, &kernel.inner_init, &opts)?;
//! assert!(report.transformed);
//!
//! // Simulate both circuits; same results, fewer cycles.
//! let (seq, _) = place_buffers(&kernel.graph);
//! let (ooo, _) = place_buffers(&optimized);
//! let feeds = [("start".to_string(), vec![Value::Unit])].into_iter().collect();
//! let a = simulate(&seq, &feeds, program.arrays.clone(), SimConfig::default())?;
//! let b = simulate(&ooo, &feeds, program.arrays.clone(), SimConfig::default())?;
//! assert_eq!(a.memory["result"], b.memory["result"]);
//! assert!(b.cycles < a.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use graphiti_bench as bench;
pub use graphiti_core as pipeline;
pub use graphiti_frontend as frontend;
pub use graphiti_ir as ir;
pub use graphiti_obs as obs;
pub use graphiti_rewrite as rewrite;
pub use graphiti_sem as sem;
pub use graphiti_sim as sim;
pub use graphiti_static as staticsched;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use graphiti_core::{dfooo_loop, optimize_loop, PipelineOptions, Refusal};
    pub use graphiti_frontend::{
        compile, compile_kernel, run_program, Expr, InnerLoop, OuterLoop, Program, StoreStmt,
    };
    pub use graphiti_ir::{
        ep, parse_dot, print_dot, CompKind, Endpoint, ExprHigh, ExprLow, Op, PureFn, Value,
    };
    pub use graphiti_rewrite::{catalog, CheckMode, Engine, Rewrite};
    pub use graphiti_sem::{check_refinement, denote_graph, Env, RefineConfig, Refinement};
    pub use graphiti_sim::{place_buffers, place_buffers_targeted, simulate, SimConfig, SimResult};
}
