//! `graphiti-cli` — the command-line face of the rewriting framework.
//!
//! The paper's Lean development extracts to a C program that sits between
//! Dynamatic's front-end and back-end (Fig. 1 / §6.3): dot graph in,
//! rewritten dot graph out. This binary plays that role:
//!
//! ```text
//! graphiti-cli [--tags N] [--mark INIT_NODE] [--checked | --checked-deferred]
//!              [--stats] [--metrics-out FILE] [--trace-out FILE] [INPUT.dot]
//! graphiti-cli --compile [--vcd-out FILE] [--trace-nodes a,b,c] [PROGRAM.gsl]
//! graphiti-cli explain-stalls [--top K] [PROGRAM.gsl]
//! graphiti-cli vcd-check FILE.vcd
//! ```
//!
//! * reads a circuit in the dot dialect (stdin when no file is given),
//! * finds the marked sequential loop (by its Init node, or the unique
//!   canonical loop when `--mark` is omitted),
//! * runs the five-phase out-of-order pipeline,
//! * prints the rewritten circuit as dot on stdout; refusals (impure loop
//!   bodies) leave the circuit unchanged and are reported on stderr,
//!   exactly like the bicg case in the paper's evaluation.
//!
//! With `--compile` the input is a loop-nest *program* in the front-end's
//! surface syntax instead of a dot circuit: each kernel is compiled, marked
//! kernels are optimized (with their declared tag budgets), and the
//! resulting circuits are printed as dot. A `.gsl` input file implies
//! `--compile`.
//!
//! `--checked` discharges each verified rewrite's refinement obligation
//! inline while the pipeline runs; `--checked-deferred` collects the
//! obligations instead and discharges the whole batch on worker threads
//! after the (sequential) rewriting finishes — same verdicts, and the
//! independent checks overlap.
//!
//! `--metrics-out FILE` / `--openmetrics-out FILE` / `--trace-out FILE`
//! install the `graphiti-obs` collection sink and write a metrics JSON
//! document / OpenMetrics text exposition / Chrome trace-event file
//! (loadable in Perfetto) when the run finishes. Any of them implies
//! `--checked` (so refinement-check metrics exist), and in compile mode
//! the optimized kernels are additionally simulated against the program's
//! arrays so the profile includes simulator fire/stall counters.
//!
//! Waveforms and stall attribution (compile mode only, since only `.gsl`
//! programs carry the arrays needed to actually run the circuit):
//!
//! * `--vcd-out FILE` simulates each kernel with waveform capture and
//!   writes a VCD document (openable in GTKWave/Surfer); with several
//!   kernels the kernel name is inserted before the extension.
//! * `--trace-nodes a,b,c` narrows both the acceptance trace and the
//!   captured waveform signals to channels touching the listed nodes.
//! * `explain-stalls` simulates each kernel with stall attribution and
//!   prints the top-K blockage chains with per-cause breakdowns
//!   (`--top K`, default 10) instead of dot output.
//! * `vcd-check FILE` parses a previously dumped VCD and reports its
//!   signal/change/time summary — the CI round-trip gate.
//!
//! Scheduler selection and compiled-backend telemetry:
//!
//! * `--scheduler event-driven|sweep|compiled` picks the simulation core
//!   for compile-mode runs (default event-driven).
//! * `--telemetry` arms the compiled backend's scope unit so waveforms,
//!   stall attribution, and node traces work at compiled speed; it is
//!   implied whenever `--scheduler compiled` is combined with `--vcd-out`,
//!   `--trace-nodes`, or `explain-stalls`. The decoded output is
//!   byte-identical to the event-driven scheduler's.
//! * `--wave-sample N` captures every N-th active cycle into the waveform
//!   (any scheduler), bounding VCD growth on long runs; stall attribution
//!   stays cycle-exact regardless of the stride.
//!
//! Resilience (see DESIGN.md §3.13):
//!
//! * `--deadline-ms N` supervises the compile-mode pipeline stages under a
//!   shared cancellation token with an N-millisecond wall-clock budget; a
//!   wedged stage is cut off with a structured stage error instead of
//!   hanging the run.
//! * `--fallback` retries compile-mode simulations down the scheduler
//!   degradation ladder (`compiled → event-driven → sweep`) when a backend
//!   fails with a backend-local error; degradations are reported on stderr
//!   and counted under `robust.*`.
//! * `--failpoints SPEC` arms the deterministic fault-injection subsystem
//!   (e.g. `seed=42;sim.fire.compiled=1/64`) for chaos drills.

use graphiti::pipeline::{find_seq_loops, optimize_loop, PipelineOptions};
use graphiti::prelude::*;
use std::io::Read;
use std::process::ExitCode;

/// What the invocation asks for (selected by the first positional word).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Default: rewrite a dot circuit (or compile a `.gsl` program).
    Rewrite,
    /// Simulate each kernel with stall attribution and print the report.
    ExplainStalls,
    /// Parse a VCD file and print its summary (round-trip check).
    VcdCheck,
    /// Run the whole pipeline phase by phase and print per-phase and
    /// per-rewrite self/total cost attribution.
    Profile,
    /// Print the canonical metrics schema document (`obs/schema.json`).
    Schema,
}

struct Args {
    tags: u32,
    mark: Option<String>,
    checked: bool,
    deferred: bool,
    stats: bool,
    compile: bool,
    metrics_out: Option<String>,
    openmetrics_out: Option<String>,
    trace_out: Option<String>,
    vcd_out: Option<String>,
    trace_nodes: Vec<String>,
    scheduler: graphiti::sim::Scheduler,
    telemetry: bool,
    wave_sample: u64,
    top: usize,
    mode: Mode,
    input: Option<String>,
    json_out: Option<String>,
    folded_out: Option<String>,
    flight_out: Option<String>,
    deadline_ms: Option<u64>,
    fallback: bool,
    failpoints: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tags: 8,
        mark: None,
        checked: false,
        deferred: false,
        stats: false,
        compile: false,
        metrics_out: None,
        openmetrics_out: None,
        trace_out: None,
        vcd_out: None,
        trace_nodes: Vec::new(),
        scheduler: graphiti::sim::Scheduler::EventDriven,
        telemetry: false,
        wave_sample: 1,
        top: 10,
        mode: Mode::Rewrite,
        input: None,
        json_out: None,
        folded_out: None,
        flight_out: None,
        deadline_ms: None,
        fallback: false,
        failpoints: None,
    };
    let mut it = std::env::args().skip(1);
    let mut first_positional = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tags" => {
                let v = it.next().ok_or("--tags needs a value")?;
                args.tags = v.parse().map_err(|_| format!("bad tag count `{v}`"))?;
                // The tag pool is materialised per tagger, so an absurd
                // budget is an allocation bomb rather than a tuning knob.
                if args.tags == 0 || args.tags > 4096 {
                    return Err(format!("--tags {} outside 1..=4096", args.tags));
                }
            }
            "--mark" => {
                args.mark = Some(it.next().ok_or("--mark needs an Init node name")?);
            }
            "--checked" => args.checked = true,
            "--checked-deferred" => args.deferred = true,
            "--stats" => args.stats = true,
            "--compile" => args.compile = true,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a file path")?);
            }
            "--openmetrics-out" => {
                args.openmetrics_out =
                    Some(it.next().ok_or("--openmetrics-out needs a file path")?);
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().ok_or("--trace-out needs a file path")?);
            }
            "--vcd-out" => {
                args.vcd_out = Some(it.next().ok_or("--vcd-out needs a file path")?);
            }
            "--trace-nodes" => {
                let v = it.next().ok_or("--trace-nodes needs a comma-separated node list")?;
                args.trace_nodes =
                    v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(Into::into).collect();
            }
            "--scheduler" => {
                let v = it.next().ok_or("--scheduler needs a value")?;
                args.scheduler = match v.as_str() {
                    "event-driven" => graphiti::sim::Scheduler::EventDriven,
                    "sweep" => graphiti::sim::Scheduler::ReferenceSweep,
                    "compiled" => graphiti::sim::Scheduler::Compiled,
                    other => {
                        return Err(format!(
                            "unknown scheduler `{other}` (expected event-driven, sweep, or compiled)"
                        ))
                    }
                };
            }
            "--telemetry" => args.telemetry = true,
            "--wave-sample" => {
                let v = it.next().ok_or("--wave-sample needs a cycle stride")?;
                args.wave_sample = v.parse().map_err(|_| format!("bad sample stride `{v}`"))?;
                if args.wave_sample == 0 {
                    return Err("--wave-sample stride must be at least 1".to_string());
                }
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                args.top = v.parse().map_err(|_| format!("bad chain count `{v}`"))?;
            }
            "--json" => {
                args.json_out = Some(it.next().ok_or("--json needs a file path")?);
            }
            "--folded" => {
                args.folded_out = Some(it.next().ok_or("--folded needs a file path")?);
            }
            "--flight-out" => {
                args.flight_out = Some(it.next().ok_or("--flight-out needs a file path")?);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a millisecond budget")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad deadline `{v}`"))?;
                if ms == 0 {
                    return Err("--deadline-ms budget must be at least 1".to_string());
                }
                args.deadline_ms = Some(ms);
            }
            "--fallback" => args.fallback = true,
            "--failpoints" => {
                args.failpoints =
                    Some(it.next().ok_or("--failpoints needs a spec (e.g. seed=42;parse=1/8)")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: graphiti-cli [--tags N] [--mark INIT_NODE] [--checked | --checked-deferred] [--stats] [--metrics-out FILE] [--openmetrics-out FILE] [--trace-out FILE] [--flight-out FILE] [INPUT.dot]\n       graphiti-cli --compile [--scheduler event-driven|sweep|compiled] [--telemetry] [--vcd-out FILE] [--wave-sample N] [--trace-nodes a,b,c] [--deadline-ms N] [--fallback] [--failpoints SPEC] [PROGRAM.gsl]\n       graphiti-cli profile [--telemetry] [--json FILE] [--folded FILE] [--flight-out FILE] PROGRAM.gsl\n       graphiti-cli explain-stalls [--scheduler NAME] [--top K] [PROGRAM.gsl]\n       graphiti-cli vcd-check FILE.vcd\n       graphiti-cli schema"
                        .to_string(),
                )
            }
            "explain-stalls" if first_positional => {
                args.mode = Mode::ExplainStalls;
                first_positional = false;
            }
            "vcd-check" if first_positional => {
                args.mode = Mode::VcdCheck;
                first_positional = false;
            }
            "profile" if first_positional => {
                args.mode = Mode::Profile;
                first_positional = false;
            }
            "schema" if first_positional => {
                args.mode = Mode::Schema;
                first_positional = false;
            }
            other if !other.starts_with('-') => {
                args.input = Some(other.to_string());
                first_positional = false;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.input.as_deref().is_some_and(|p| p.ends_with(".gsl")) {
        args.compile = true;
    }
    if args.mode == Mode::ExplainStalls {
        // Stall attribution needs a runnable program: only compile mode
        // carries the arrays to feed the circuit.
        args.compile = true;
    }
    if args.mode == Mode::Profile {
        // Profiling covers the whole pipeline through simulation, so it
        // needs a runnable program too; checks run deferred so the check
        // phase is a distinct span discharged on the pool.
        if !args.input.as_deref().is_some_and(|p| p.ends_with(".gsl")) {
            return Err(
                "profile needs a `.gsl` program (the simulate phase runs the kernels)".to_string()
            );
        }
        args.compile = true;
        args.deferred = true;
    }
    if (args.vcd_out.is_some() || args.mode == Mode::ExplainStalls) && !args.compile {
        return Err("waveforms and stall attribution need a `.gsl` program (compile mode): \
                    dot circuits carry no input arrays to simulate"
            .to_string());
    }
    if (args.metrics_out.is_some() || args.openmetrics_out.is_some() || args.trace_out.is_some())
        && !args.deferred
    {
        // A profile without refinement-check metrics would be misleading:
        // observed runs are always checked.
        args.checked = true;
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.mode == Mode::Schema {
        print!("{}", graphiti::obs::schema::schema_json());
        return Ok(());
    }
    let observing = args.metrics_out.is_some()
        || args.openmetrics_out.is_some()
        || args.trace_out.is_some()
        || args.mode == Mode::Profile;
    if observing {
        graphiti::obs::enable();
    }
    if let Some(path) = &args.flight_out {
        // On-demand + on-panic flight recording: the ring dumps to the
        // requested path either way.
        graphiti::obs::flight::enable();
        graphiti::obs::flight::set_dump_path(path.clone());
        graphiti::obs::flight::install_panic_hook();
    }
    if let Some(spec) = &args.failpoints {
        graphiti::obs::failpoint::configure(spec).map_err(|e| format!("--failpoints: {e}"))?;
    }
    let result = run_inner(&args);
    if observing {
        // Export whatever was collected even when the run failed: a
        // partial profile is exactly what a failure investigation needs.
        write_observations(&args)?;
    }
    if let Some(path) = &args.flight_out {
        graphiti::obs::flight::write_jsonl(path)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!(
            "graphiti-cli: flight recorder wrote {} events to {path} ({} dropped)",
            graphiti::obs::flight::events().len(),
            graphiti::obs::flight::dropped()
        );
    }
    result
}

fn write_observations(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.metrics_out {
        graphiti::obs::write_metrics_json(path)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if let Some(path) = &args.openmetrics_out {
        std::fs::write(path, graphiti::obs::openmetrics_text())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if let Some(path) = &args.trace_out {
        graphiti::obs::write_chrome_trace(path)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    if args.stats {
        eprint!("{}", graphiti::obs::summary_table());
    }
    Ok(())
}

fn check_mode(args: &Args) -> CheckMode {
    if args.deferred {
        CheckMode::Deferred
    } else if args.checked {
        CheckMode::Checked
    } else {
        CheckMode::Off
    }
}

/// The run-wide cancellation token: armed with the `--deadline-ms` budget
/// when given, otherwise a token that never trips on its own.
fn run_token(args: &Args) -> graphiti::obs::CancelToken {
    match args.deadline_ms {
        Some(ms) => graphiti::obs::CancelToken::with_deadline_ms(ms),
        None => graphiti::obs::CancelToken::new(),
    }
}

/// Discharges a deferred obligation batch in parallel under the run token,
/// failing on the first violation (or on an abandoned batch).
fn discharge_deferred(
    context: &str,
    obligations: Vec<graphiti::rewrite::Obligation>,
    token: &graphiti::obs::CancelToken,
    cfg: &graphiti::sem::RefineConfig,
) -> Result<(), String> {
    if obligations.is_empty() {
        return Ok(());
    }
    let n = obligations.len();
    let verdicts = graphiti::rewrite::verify::discharge_cancellable(obligations, token, cfg)
        .ok_or_else(|| {
            format!(
                "graphiti-cli: {context}: deferred obligation batch abandoned \
                 (deadline or cancellation)"
            )
        })?;
    if let Some(v) = graphiti::rewrite::verify::first_violation(&verdicts) {
        return Err(format!(
            "graphiti-cli: {context}: deferred obligation of `{}` failed: {:?}",
            v.rewrite, v.verdict
        ));
    }
    eprintln!("graphiti-cli: {context}: discharged {n} deferred obligations in parallel; all hold");
    Ok(())
}

fn run_inner(args: &Args) -> Result<(), String> {
    let src = match &args.input {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };

    if args.mode == Mode::VcdCheck {
        return vcd_check(&src, args);
    }
    if args.mode == Mode::Profile {
        return profile_mode(&src, args);
    }
    if args.compile {
        return compile_mode(&src, args);
    }

    let g = parse_dot(&src).map_err(|e| e.to_string())?;
    g.validate().map_err(|e| format!("circuit incomplete: {e}"))?;

    let init = match &args.mark {
        Some(name) => {
            if g.kind(name).is_none() {
                return Err(format!("--mark `{name}`: no such node"));
            }
            name.clone()
        }
        None => {
            let loops = find_seq_loops(&g);
            match loops.as_slice() {
                [l] => l.init.clone(),
                [] => return Err("no canonical sequential loop found; use --mark".into()),
                many => {
                    return Err(format!(
                        "{} loops found ({}); pick one with --mark",
                        many.len(),
                        many.iter().map(|l| l.init.as_str()).collect::<Vec<_>>().join(", ")
                    ))
                }
            }
        }
    };

    let opts = PipelineOptions { tags: args.tags, check: check_mode(args), ..Default::default() };
    let (out, mut report) = {
        let _span = graphiti::obs::span("optimize");
        optimize_loop(&g, &init, &opts).map_err(|e| e.to_string())?
    };
    discharge_deferred(
        "circuit",
        std::mem::take(&mut report.obligations),
        &run_token(args),
        &opts.refine_cfg,
    )?;
    if args.stats {
        eprintln!(
            "graphiti-cli: transformed = {}, rewrites = {}, pure-by-rewrites = {}",
            report.transformed, report.rewrites, report.pure_by_rewrites
        );
        let before = g.kind_histogram();
        let after = out.kind_histogram();
        eprintln!(
            "graphiti-cli: {} -> {} components, {} -> {} edges",
            g.node_count(),
            out.node_count(),
            g.edge_count(),
            out.edge_count()
        );
        for (kind, n) in &after {
            let b = before.get(kind).copied().unwrap_or(0);
            if *n != b {
                eprintln!("graphiti-cli:   {kind}: {b} -> {n}");
            }
        }
    }
    if let Some(refusal) = &report.refusal {
        eprintln!("graphiti-cli: transformation refused: {refusal}; circuit left unchanged");
    }
    println!("{}", print_dot(&out));
    Ok(())
}

/// `vcd-check FILE`: parse a waveform dump back and print its summary;
/// any malformation is a hard error (the CI round-trip gate).
fn vcd_check(src: &str, args: &Args) -> Result<(), String> {
    let file = args.input.as_deref().unwrap_or("<stdin>");
    let dump = graphiti::obs::vcd::parse(src).map_err(|e| format!("{file}: {e}"))?;
    println!(
        "{file}: {} signals, {} changes, end time {} ({})",
        dump.signals.len(),
        dump.change_count(),
        dump.end_time(),
        if dump.timescale.is_empty() { "no timescale".to_string() } else { dump.timescale.clone() }
    );
    Ok(())
}

/// The VCD output path for one kernel: the requested path verbatim for a
/// single-kernel program, otherwise the kernel name is inserted before
/// the extension (`out.vcd` → `out.gcd.vcd`).
fn vcd_path(requested: &str, kernel: &str, kernels: usize) -> String {
    if kernels <= 1 {
        return requested.to_string();
    }
    match requested.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{kernel}.{ext}"),
        None => format!("{requested}.{kernel}"),
    }
}

/// `--compile`: front-end program in, optimized dot circuits out. The
/// whole mode runs under the run token (`--deadline-ms`), each stage
/// supervised so a wedged or faulted stage surfaces as a structured
/// stage error naming the stage and its elapsed time.
fn compile_mode(src: &str, args: &Args) -> Result<(), String> {
    let token = run_token(args);
    let (program, compiled) = graphiti_robust::supervise("parse", &token, || {
        let program = graphiti::frontend::parse_program(src).map_err(|e| e.to_string())?;
        let compiled = graphiti::frontend::compile(&program).map_err(|e| e.to_string())?;
        Ok::<_, String>((program, compiled))
    })
    .map_err(|e| format!("graphiti-cli: {e}"))?;
    let mut optimized: Vec<(String, ExprHigh)> = Vec::new();
    for kernel in &compiled.kernels {
        let out = match kernel.ooo_tags {
            Some(tags) => {
                let opts = PipelineOptions { tags, check: check_mode(args), ..Default::default() };
                let (g, mut report) = graphiti_robust::supervise("rewrite", &token, || {
                    let _span = graphiti::obs::span("optimize");
                    optimize_loop(&kernel.graph, &kernel.inner_init, &opts)
                })
                .map_err(|e| format!("graphiti-cli: kernel `{}`: {e}", kernel.name))?;
                discharge_deferred(
                    &format!("kernel `{}`", kernel.name),
                    std::mem::take(&mut report.obligations),
                    &token,
                    &opts.refine_cfg,
                )?;
                if args.stats {
                    eprintln!(
                        "graphiti-cli: kernel `{}`: transformed = {}, rewrites = {}",
                        kernel.name, report.transformed, report.rewrites
                    );
                }
                if let Some(refusal) = &report.refusal {
                    eprintln!(
                        "graphiti-cli: kernel `{}` refused: {refusal}; left in order",
                        kernel.name
                    );
                }
                g
            }
            None => kernel.graph.clone(),
        };
        if args.mode != Mode::ExplainStalls {
            println!("// kernel {}", kernel.name);
            println!("{}", print_dot(&out));
        }
        optimized.push((kernel.name.clone(), out));
    }
    // Simulation pass: under --metrics-out / --trace-out (so the profile
    // carries fire/stall/latency data), under --vcd-out (waveform
    // capture), and in explain-stalls mode (attribution).
    let explain = args.mode == Mode::ExplainStalls;
    if graphiti::obs::enabled() || args.vcd_out.is_some() || explain {
        let _span = graphiti::obs::span("simulate");
        let mut mem = program.arrays.clone();
        let feeds: std::collections::BTreeMap<String, Vec<Value>> =
            [("start".to_string(), vec![Value::Unit])].into_iter().collect();
        let observing = args.vcd_out.is_some() || explain || !args.trace_nodes.is_empty();
        let cfg = SimConfig {
            trace_nodes: args.trace_nodes.clone(),
            waveform: args.vcd_out.is_some(),
            attribute_stalls: explain,
            scheduler: args.scheduler,
            // Observation on the compiled backend needs the scope unit;
            // turn it on rather than bounce the run with Unsupported.
            telemetry: args.telemetry
                || (args.scheduler == graphiti::sim::Scheduler::Compiled && observing),
            wave_sample: args.wave_sample,
            cancel: Some(token.clone()),
            ..Default::default()
        };
        for (name, g) in &optimized {
            let (placed, _) = place_buffers(g);
            let memory = mem.clone();
            let r = graphiti_robust::supervise("simulate", &token, || {
                if args.fallback {
                    graphiti_robust::simulate_resilient(&placed, &feeds, memory, cfg.clone()).map(
                        |(r, used)| {
                            if used != cfg.scheduler {
                                eprintln!(
                                    "graphiti-cli: kernel `{name}` degraded to {used:?} scheduler"
                                );
                            }
                            r
                        },
                    )
                } else {
                    simulate(&placed, &feeds, memory, cfg.clone())
                }
            })
            .map_err(|e| format!("graphiti-cli: kernel `{name}`: {e}"))?;
            eprintln!(
                "graphiti-cli: kernel `{name}` simulated: {} cycles, {} firings",
                r.cycles, r.firings
            );
            if let (Some(requested), Some(vcd)) = (&args.vcd_out, &r.waveform) {
                let path = vcd_path(requested, name, optimized.len());
                std::fs::write(&path, vcd).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                eprintln!("graphiti-cli: kernel `{name}` waveform written to {path}");
            }
            if let Some(report) = &r.stalls {
                println!("kernel `{name}` stall attribution:");
                print!("{}", report.render(args.top));
            }
            mem = r.memory;
        }
    }
    Ok(())
}

/// `profile PROGRAM.gsl`: run the pipeline phase by phase — parse →
/// rewrite → check → simulate, each a child span of one root `pipeline`
/// span — then print per-phase and per-rewrite self/total attribution
/// reconstructed from the trace. `--json` / `--folded` additionally write
/// the JSON document and flamegraph-ready folded stacks.
fn profile_mode(src: &str, args: &Args) -> Result<(), String> {
    let refine_cfg = graphiti::sem::RefineConfig::default();
    let token = run_token(args);
    {
        let _root = graphiti::obs::span("pipeline");
        graphiti::obs::flight::record("profile.start", || {
            format!("profiling `{}`", args.input.as_deref().unwrap_or("<stdin>"))
        });

        let (program, compiled) = {
            let _phase = graphiti::obs::span("parse");
            let program = graphiti::frontend::parse_program(src).map_err(|e| e.to_string())?;
            let compiled = graphiti::frontend::compile(&program).map_err(|e| e.to_string())?;
            (program, compiled)
        };

        let mut optimized: Vec<(String, ExprHigh)> = Vec::new();
        let mut obligations: Vec<graphiti::rewrite::Obligation> = Vec::new();
        {
            let _phase = graphiti::obs::span("rewrite");
            for kernel in &compiled.kernels {
                match kernel.ooo_tags {
                    Some(tags) => {
                        let opts = PipelineOptions {
                            tags,
                            check: CheckMode::Deferred,
                            refine_cfg: refine_cfg.clone(),
                            ..Default::default()
                        };
                        let (g, mut report) =
                            optimize_loop(&kernel.graph, &kernel.inner_init, &opts)
                                .map_err(|e| e.to_string())?;
                        obligations.append(&mut report.obligations);
                        if let Some(refusal) = &report.refusal {
                            eprintln!(
                                "graphiti-cli: kernel `{}` refused: {refusal}; left in order",
                                kernel.name
                            );
                        }
                        optimized.push((kernel.name.clone(), g));
                    }
                    None => optimized.push((kernel.name.clone(), kernel.graph.clone())),
                }
            }
        }

        {
            // Obligations discharge on the pool here; the workers adopt
            // this span, so refine_check spans parent under `check`.
            let _phase = graphiti::obs::span("check");
            discharge_deferred("profile", obligations, &token, &refine_cfg)?;
        }

        {
            // The compiled backend runs here so the profile shows the
            // lowering cost as its own `sim.compile` child span under
            // `simulate`, separate from the raw simulation time.
            let _phase = graphiti::obs::span("simulate");
            let mut mem = program.arrays.clone();
            let feeds: std::collections::BTreeMap<String, Vec<Value>> =
                [("start".to_string(), vec![Value::Unit])].into_iter().collect();
            let cfg = SimConfig {
                scheduler: graphiti::sim::Scheduler::Compiled,
                telemetry: args.telemetry,
                cancel: Some(token.clone()),
                ..SimConfig::default()
            };
            for (name, g) in &optimized {
                let (placed, _) = place_buffers(g);
                let r = simulate(&placed, &feeds, mem, cfg.clone())
                    .map_err(|e| format!("kernel `{name}` simulation: {e}"))?;
                eprintln!(
                    "graphiti-cli: kernel `{name}` simulated: {} cycles, {} firings",
                    r.cycles, r.firings
                );
                mem = r.memory;
            }
        }
    }

    let profile = graphiti::obs::profile::Profile::from_trace();
    print!("{}", profile.text_table());
    let total =
        |path: &str| profile.rows.iter().find(|r| r.path == path).map(|r| r.total_us).unwrap_or(0);
    let pipeline_total = total("pipeline");
    let phase_sum: u64 =
        ["pipeline;parse", "pipeline;rewrite", "pipeline;check", "pipeline;simulate"]
            .iter()
            .map(|p| total(p))
            .sum::<u64>()
            + profile.rows.iter().find(|r| r.path == "pipeline").map(|r| r.self_us).unwrap_or(0);
    let drift_pct = if pipeline_total == 0 {
        0.0
    } else {
        (phase_sum as f64 - pipeline_total as f64) / pipeline_total as f64 * 100.0
    };
    println!(
        "phase self/total sum: {phase_sum} us; pipeline span: {pipeline_total} us; \
         drift {drift_pct:+.3}%"
    );
    if let Some(path) = &args.json_out {
        std::fs::write(path, profile.json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("graphiti-cli: profile JSON written to {path}");
    }
    if let Some(path) = &args.folded_out {
        std::fs::write(path, profile.folded())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("graphiti-cli: folded stacks written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
